//! Batch deployment recommendation (paper §3, Problem 1).
//!
//! Given a batch of `m` deployment requests, a strategy set `S`, a
//! cardinality constraint `k` and the expected worker availability `W`, the
//! Aggregator distributes `W` among the requests so that a platform-centric
//! objective is maximized:
//!
//! * **Throughput** — the number of satisfied requests. `BatchStrat` solves
//!   this exactly by selecting requests in ascending order of workforce
//!   requirement (Theorem 2).
//! * **Pay-off** — the total cost budget of satisfied requests. This is
//!   NP-hard by reduction from 0/1 knapsack (Theorem 1); `BatchStrat` is the
//!   greedy ½-approximation (Theorem 3).
//!
//! The module also implements the paper's experimental baselines: the plain
//! greedy `BaselineG` and the exponential `Brute Force` reference (§5.2.1).

use serde::{Deserialize, Serialize};
use stratrec_optim::knapsack::{self, KnapsackItem};

use crate::availability::WorkerAvailability;
use crate::catalog::StrategyCatalog;
use crate::error::StratRecError;
use crate::model::{DeploymentRequest, RequestId, Strategy};
use crate::modeling::{ModelLibrary, StrategyModel};
use crate::workforce::{AggregationMode, EligibilityRule, RequestRequirement, WorkforceMatrix};

/// Platform-centric objective maximized by the Aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BatchObjective {
    /// Maximize the number of satisfied deployment requests.
    #[default]
    Throughput,
    /// Maximize the total pay-off (the cost budgets of satisfied requests).
    Payoff,
}

/// Which selection algorithm to run over the per-request requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BatchAlgorithm {
    /// The paper's `BatchStrat`: greedy in density order with the
    /// better-of-prefix-or-breaking-item fix-up (exact for throughput,
    /// ½-approximate for pay-off).
    #[default]
    BatchStrat,
    /// `BaselineG`: greedy in density order, keeps adding requests that still
    /// fit until the workforce is exhausted, no fix-up and no guarantee.
    BaselineG,
    /// Exhaustive enumeration of request subsets (exponential; the paper caps
    /// it at `m ≈ 30`).
    BruteForce,
}

/// One satisfied deployment request and the strategies recommended for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Index of the request in the input batch.
    pub request_index: usize,
    /// Identifier of the request.
    pub request_id: RequestId,
    /// Indices (into the strategy slice) of the `k` recommended strategies,
    /// cheapest workforce first.
    pub strategy_indices: Vec<usize>,
    /// Aggregated workforce requirement charged against `W`.
    pub workforce: f64,
    /// Contribution of this request to the objective (1 for throughput, the
    /// request's cost budget for pay-off).
    pub objective_contribution: f64,
}

/// Result of triaging one batch of deployment requests.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Requests that received `k` strategy recommendations.
    pub satisfied: Vec<Recommendation>,
    /// Indices of requests that were not satisfied (either not selected under
    /// the workforce budget, or structurally infeasible because fewer than
    /// `k` strategies meet their thresholds). These are forwarded to ADPaR.
    pub unsatisfied: Vec<usize>,
    /// Total objective value achieved.
    pub objective_value: f64,
    /// Total workforce consumed by the satisfied requests.
    pub workforce_used: f64,
}

impl BatchOutcome {
    /// Fraction of the batch that was satisfied (`0` for an empty batch).
    #[must_use]
    pub fn satisfaction_rate(&self) -> f64 {
        let total = self.satisfied.len() + self.unsatisfied.len();
        if total == 0 {
            0.0
        } else {
            self.satisfied.len() as f64 / total as f64
        }
    }
}

/// The Aggregator's batch-recommendation engine.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchStrat {
    /// Objective to maximize.
    pub objective: BatchObjective,
    /// Workforce aggregation mode over the `k` recommended strategies.
    pub aggregation: AggregationMode,
    /// Selection algorithm (the paper's `BatchStrat` by default).
    pub algorithm: BatchAlgorithm,
    /// How strategies are filtered before the workforce computation.
    pub eligibility: EligibilityRule,
}

impl BatchStrat {
    /// Creates an engine with the default [`BatchAlgorithm::BatchStrat`]
    /// selection rule.
    #[must_use]
    pub fn new(objective: BatchObjective, aggregation: AggregationMode) -> Self {
        Self {
            objective,
            aggregation,
            algorithm: BatchAlgorithm::BatchStrat,
            eligibility: EligibilityRule::default(),
        }
    }

    /// Replaces the selection algorithm (used to run the paper's baselines on
    /// identical inputs).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: BatchAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces the strategy-eligibility rule. The synthetic experiments of
    /// §5.2 recommend any strategy whose *model* can meet the thresholds
    /// ([`EligibilityRule::ModelOnly`]); real deployments filter on the
    /// strategies' estimated parameters (the default).
    #[must_use]
    pub fn with_eligibility(mut self, eligibility: EligibilityRule) -> Self {
        self.eligibility = eligibility;
        self
    }

    /// Recommends strategies for a batch using a *default* model library in
    /// which every strategy follows `param = 1.0 · w + 0.0` — i.e. meeting a
    /// quality threshold `q` requires a workforce fraction `q`. This is a
    /// convenience for examples and demos; production callers fit per-strategy
    /// models from history and use [`Self::recommend_with_models`].
    #[must_use]
    pub fn recommend(
        &self,
        requests: &[DeploymentRequest],
        strategies: &[Strategy],
        k: usize,
        availability: WorkerAvailability,
    ) -> BatchOutcome {
        let models = ModelLibrary::uniform_for(strategies, StrategyModel::uniform(1.0, 0.0));
        self.recommend_with_models(requests, strategies, &models, k, availability)
            .expect("uniform library covers every strategy")
    }

    /// Recommends strategies for a batch using fitted per-strategy models.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a strategy lacks a model.
    pub fn recommend_with_models(
        &self,
        requests: &[DeploymentRequest],
        strategies: &[Strategy],
        models: &ModelLibrary,
        k: usize,
        availability: WorkerAvailability,
    ) -> Result<BatchOutcome, StratRecError> {
        let matrix =
            WorkforceMatrix::compute_with_rule(requests, strategies, models, self.eligibility)?;
        Ok(self.recommend_from_matrix(requests, &matrix, k, availability))
    }

    /// Recommends strategies for a batch against an indexed
    /// [`StrategyCatalog`], answering eligibility through the catalog's
    /// R-tree instead of scanning every strategy per request. Produces an
    /// outcome identical to [`Self::recommend_with_models`] over
    /// `catalog.strategies()`.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a catalog strategy lacks
    /// a model.
    pub fn recommend_with_catalog(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        k: usize,
        availability: WorkerAvailability,
    ) -> Result<BatchOutcome, StratRecError> {
        let matrix =
            WorkforceMatrix::compute_with_catalog(requests, catalog, models, self.eligibility)?;
        Ok(self.recommend_from_matrix(requests, &matrix, k, availability))
    }

    /// Recommends strategies given a pre-computed workforce matrix. This is
    /// the entry point used by the synthetic experiments, which generate the
    /// matrix from sampled `(α, β)` pairs directly.
    #[must_use]
    pub fn recommend_from_matrix(
        &self,
        requests: &[DeploymentRequest],
        matrix: &WorkforceMatrix,
        k: usize,
        availability: WorkerAvailability,
    ) -> BatchOutcome {
        let requirements = matrix.aggregate(k, self.aggregation);
        self.select(requests, &requirements, availability)
    }

    /// Runs the selection step over per-request requirements (`None` entries
    /// are structurally infeasible requests).
    #[must_use]
    pub fn select(
        &self,
        requests: &[DeploymentRequest],
        requirements: &[Option<RequestRequirement>],
        availability: WorkerAvailability,
    ) -> BatchOutcome {
        debug_assert_eq!(requests.len(), requirements.len());
        // Feasible candidates become knapsack items.
        let mut candidate_indices = Vec::new();
        let mut items = Vec::new();
        for (idx, requirement) in requirements.iter().enumerate() {
            if let Some(req) = requirement {
                let value = match self.objective {
                    BatchObjective::Throughput => 1.0,
                    BatchObjective::Payoff => requests[idx].payoff(),
                };
                candidate_indices.push(idx);
                items.push(KnapsackItem::new(req.workforce, value));
            }
        }

        let capacity = availability.value();
        let solution = match self.algorithm {
            BatchAlgorithm::BatchStrat => match self.objective {
                // Ascending-workforce greedy is exact for throughput
                // (Theorem 2) and coincides with density order because every
                // value is 1.
                BatchObjective::Throughput => knapsack::solve_greedy_half_approx(&items, capacity),
                BatchObjective::Payoff => knapsack::solve_greedy_half_approx(&items, capacity),
            },
            BatchAlgorithm::BaselineG => knapsack::solve_greedy_density(&items, capacity),
            BatchAlgorithm::BruteForce => knapsack::solve_brute_force(&items, capacity),
        };

        let selected: std::collections::HashSet<usize> = solution
            .selected
            .iter()
            .map(|&item_idx| candidate_indices[item_idx])
            .collect();

        let mut satisfied = Vec::with_capacity(selected.len());
        let mut unsatisfied = Vec::new();
        let mut objective_value = 0.0;
        let mut workforce_used = 0.0;
        for (idx, requirement) in requirements.iter().enumerate() {
            match requirement {
                Some(req) if selected.contains(&idx) => {
                    let contribution = match self.objective {
                        BatchObjective::Throughput => 1.0,
                        BatchObjective::Payoff => requests[idx].payoff(),
                    };
                    objective_value += contribution;
                    workforce_used += req.workforce;
                    satisfied.push(Recommendation {
                        request_index: idx,
                        request_id: requests[idx].id,
                        strategy_indices: req.strategy_indices.clone(),
                        workforce: req.workforce,
                        objective_contribution: contribution,
                    });
                }
                _ => unsatisfied.push(idx),
            }
        }

        BatchOutcome {
            satisfied,
            unsatisfied,
            objective_value,
            workforce_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeploymentParameters, TaskType};
    use proptest::prelude::*;

    fn avail(w: f64) -> WorkerAvailability {
        WorkerAvailability::new(w).unwrap()
    }

    fn request(id: u64, q: f64, c: f64, l: f64) -> DeploymentRequest {
        DeploymentRequest::new(
            id,
            TaskType::TextCreation,
            DeploymentParameters::clamped(q, c, l),
        )
    }

    fn requirement(idx: usize, workforce: f64) -> Option<RequestRequirement> {
        Some(RequestRequirement {
            request_index: idx,
            strategy_indices: vec![0, 1, 2],
            workforce,
        })
    }

    #[test]
    fn running_example_matches_paper() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let engine = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Max);
        let outcome = engine.recommend(&requests, &strategies, 3, avail(0.8));
        assert_eq!(outcome.satisfied.len(), 1);
        assert_eq!(outcome.satisfied[0].request_index, 2);
        let mut rec = outcome.satisfied[0].strategy_indices.clone();
        rec.sort_unstable();
        assert_eq!(rec, vec![1, 2, 3]); // s2, s3, s4
        assert_eq!(outcome.unsatisfied, vec![0, 1]);
        assert!((outcome.objective_value - 1.0).abs() < 1e-12);
        assert!((outcome.satisfaction_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn payoff_objective_uses_cost_budgets() {
        let requests = vec![
            request(1, 0.6, 0.9, 0.9),
            request(2, 0.6, 0.3, 0.9),
            request(3, 0.6, 0.5, 0.9),
        ];
        let requirements = vec![
            requirement(0, 0.6),
            requirement(1, 0.3),
            requirement(2, 0.5),
        ];
        let engine = BatchStrat::new(BatchObjective::Payoff, AggregationMode::Sum);
        let outcome = engine.select(&requests, &requirements, avail(0.8));
        // Optimal subsets within capacity 0.8: {0} (0.9) vs {1,2} (0.8).
        assert!(outcome.objective_value >= 0.8);
        assert!(outcome.workforce_used <= 0.8 + 1e-9);
    }

    #[test]
    fn throughput_greedy_is_exact_against_brute_force() {
        let requests: Vec<DeploymentRequest> = (0..8)
            .map(|i| request(i, 0.5, 0.5 + 0.05 * i as f64, 0.9))
            .collect();
        let requirements: Vec<Option<RequestRequirement>> = (0..8)
            .map(|i| requirement(i, 0.05 + 0.07 * i as f64))
            .collect();
        for w in [0.1, 0.3, 0.5, 0.8] {
            let greedy = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Sum).select(
                &requests,
                &requirements,
                avail(w),
            );
            let brute = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Sum)
                .with_algorithm(BatchAlgorithm::BruteForce)
                .select(&requests, &requirements, avail(w));
            assert_eq!(greedy.satisfied.len(), brute.satisfied.len(), "W = {w}");
        }
    }

    #[test]
    fn infeasible_requests_are_always_unsatisfied() {
        let requests = vec![request(1, 0.9, 0.1, 0.1), request(2, 0.2, 0.9, 0.9)];
        let requirements = vec![None, requirement(1, 0.2)];
        let outcome = BatchStrat::default().select(&requests, &requirements, avail(1.0));
        assert_eq!(outcome.satisfied.len(), 1);
        assert_eq!(outcome.unsatisfied, vec![0]);
    }

    #[test]
    fn zero_availability_satisfies_only_zero_cost_requests() {
        let requests = vec![request(1, 0.5, 0.5, 0.5), request(2, 0.5, 0.5, 0.5)];
        let requirements = vec![requirement(0, 0.0), requirement(1, 0.4)];
        let outcome = BatchStrat::default().select(&requests, &requirements, avail(0.0));
        assert_eq!(outcome.satisfied.len(), 1);
        assert_eq!(outcome.satisfied[0].request_index, 0);
    }

    #[test]
    fn baseline_g_keeps_filling_after_breaking_item() {
        // Density order: idx0 (w=0.5, v=1), idx1 (w=0.6, v=1), idx2 (w=0.1, v=1).
        // With W=0.6 BatchStrat stops at idx1 and compares with the best
        // single item, while BaselineG skips idx1 and still takes idx2.
        let requests = vec![
            request(1, 0.5, 0.5, 0.5),
            request(2, 0.5, 0.5, 0.5),
            request(3, 0.5, 0.5, 0.5),
        ];
        let requirements = vec![
            requirement(0, 0.5),
            requirement(1, 0.6),
            requirement(2, 0.1),
        ];
        let baseline = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Sum)
            .with_algorithm(BatchAlgorithm::BaselineG)
            .select(&requests, &requirements, avail(0.6));
        assert_eq!(baseline.satisfied.len(), 2);
        let strat = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Sum).select(
            &requests,
            &requirements,
            avail(0.6),
        );
        assert_eq!(strat.satisfied.len(), 2); // ascending-workforce order: idx2 then idx0
    }

    #[test]
    fn empty_batch_produces_empty_outcome() {
        let outcome = BatchStrat::default().select(&[], &[], avail(0.5));
        assert!(outcome.satisfied.is_empty());
        assert!(outcome.unsatisfied.is_empty());
        assert_eq!(outcome.objective_value, 0.0);
        assert_eq!(outcome.satisfaction_rate(), 0.0);
    }

    #[test]
    fn recommend_with_models_propagates_missing_model_error() {
        let strategies = crate::examples_data::running_example_strategies();
        let requests = crate::examples_data::running_example_requests();
        let result = BatchStrat::default().recommend_with_models(
            &requests,
            &strategies,
            &ModelLibrary::new(),
            3,
            avail(0.5),
        );
        assert!(matches!(result, Err(StratRecError::MissingModel { .. })));
    }

    proptest! {
        #[test]
        fn workforce_budget_is_never_exceeded(
            workforces in proptest::collection::vec(0.0_f64..0.5, 1..12),
            availability in 0.0_f64..1.0,
            payoff_objective in proptest::bool::ANY,
        ) {
            let requests: Vec<DeploymentRequest> = workforces
                .iter()
                .enumerate()
                .map(|(i, _)| request(i as u64, 0.5, 0.7, 0.9))
                .collect();
            let requirements: Vec<Option<RequestRequirement>> = workforces
                .iter()
                .enumerate()
                .map(|(i, &w)| requirement(i, w))
                .collect();
            let objective = if payoff_objective {
                BatchObjective::Payoff
            } else {
                BatchObjective::Throughput
            };
            for algorithm in [
                BatchAlgorithm::BatchStrat,
                BatchAlgorithm::BaselineG,
                BatchAlgorithm::BruteForce,
            ] {
                let outcome = BatchStrat::new(objective, AggregationMode::Sum)
                    .with_algorithm(algorithm)
                    .select(&requests, &requirements, avail(availability));
                prop_assert!(outcome.workforce_used <= availability + 1e-9);
                prop_assert_eq!(
                    outcome.satisfied.len() + outcome.unsatisfied.len(),
                    requests.len()
                );
            }
        }

        #[test]
        fn batchstrat_payoff_is_half_approximate(
            workforces in proptest::collection::vec(0.01_f64..0.6, 1..10),
            costs in proptest::collection::vec(0.1_f64..1.0, 10..=10),
            availability in 0.1_f64..1.0,
        ) {
            let n = workforces.len();
            let requests: Vec<DeploymentRequest> = (0..n)
                .map(|i| request(i as u64, 0.5, costs[i], 0.9))
                .collect();
            let requirements: Vec<Option<RequestRequirement>> = workforces
                .iter()
                .enumerate()
                .map(|(i, &w)| requirement(i, w))
                .collect();
            let approx = BatchStrat::new(BatchObjective::Payoff, AggregationMode::Sum)
                .select(&requests, &requirements, avail(availability));
            let brute = BatchStrat::new(BatchObjective::Payoff, AggregationMode::Sum)
                .with_algorithm(BatchAlgorithm::BruteForce)
                .select(&requests, &requirements, avail(availability));
            prop_assert!(approx.objective_value + 1e-9 >= brute.objective_value / 2.0);
            prop_assert!(approx.objective_value <= brute.objective_value + 1e-9);
        }

        #[test]
        fn throughput_greedy_matches_brute_force(
            workforces in proptest::collection::vec(0.01_f64..0.5, 1..10),
            availability in 0.0_f64..1.0,
        ) {
            let requests: Vec<DeploymentRequest> = (0..workforces.len())
                .map(|i| request(i as u64, 0.5, 0.7, 0.9))
                .collect();
            let requirements: Vec<Option<RequestRequirement>> = workforces
                .iter()
                .enumerate()
                .map(|(i, &w)| requirement(i, w))
                .collect();
            let greedy = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Sum)
                .select(&requests, &requirements, avail(availability));
            let brute = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Sum)
                .with_algorithm(BatchAlgorithm::BruteForce)
                .select(&requests, &requirements, avail(availability));
            prop_assert_eq!(greedy.satisfied.len(), brute.satisfied.len());
        }
    }
}
