//! # StratRec core library
//!
//! Reproduction of *"Recommending Deployment Strategies for Collaborative
//! Tasks"* (Wei, Basu Roy, Amer-Yahia — SIGMOD 2020). StratRec is an
//! optimization-driven middle layer between task requesters, crowd workers
//! and a crowdsourcing platform:
//!
//! * A requester submits a **deployment request** with a quality lower bound
//!   and cost / latency upper bounds ([`model::DeploymentRequest`]).
//! * The platform exposes a set of **deployment strategies** — combinations
//!   of *Structure* (sequential / simultaneous), *Organization* (independent
//!   / collaborative) and *Style* (crowd-only / hybrid) — each with estimated
//!   quality, cost and latency ([`model::Strategy`]).
//! * The **Aggregator** ([`batch::BatchStrat`]) triages a batch of requests
//!   against the expected **worker availability**
//!   ([`availability::WorkerAvailability`]), recommending `k` strategies per
//!   satisfied request while maximizing platform throughput (exactly) or
//!   pay-off (½-approximation).
//! * Requests that cannot be satisfied are forwarded to **ADPaR**
//!   ([`adpar`]), which computes the closest alternative deployment
//!   parameters for which `k` strategies exist (exactly, by a sweep-line
//!   algorithm), together with the baselines the paper compares against.
//! * [`stratrec::StratRec`] wires the two modules into the middle layer of
//!   the paper's Figure 1.
//!
//! The crate is deterministic and dependency-light; simulation of the
//! crowdsourcing platform itself (workers, HITs, collaboration) lives in
//! `stratrec-platform`, and synthetic workload generation in
//! `stratrec-workload`.
//!
//! ## Quick start
//!
//! ```
//! use stratrec_core::prelude::*;
//!
//! // The paper's running example (Table 1): 3 requests, 4 strategies, k = 3.
//! let strategies = stratrec_core::examples_data::running_example_strategies();
//! let requests = stratrec_core::examples_data::running_example_requests();
//! let availability = WorkerAvailability::new(0.8).unwrap();
//!
//! let engine = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Max);
//! let outcome = engine.recommend(&requests, &strategies, 3, availability);
//!
//! // Only d3 can be fully served; d1 and d2 go to ADPaR.
//! assert_eq!(outcome.satisfied.len(), 1);
//! let adpar = AdparExact::default();
//! for &idx in &outcome.unsatisfied {
//!     let solution = adpar
//!         .solve(&AdparProblem::new(&requests[idx], &strategies, 3))
//!         .expect("k strategies exist after relaxation");
//!     assert!(solution.strategy_indices.len() >= 3);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod adpar;
pub mod availability;
pub mod batch;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod examples_data;
pub mod fairness;
pub mod model;
pub mod modeling;
pub mod stratrec;
pub mod workforce;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::adpar::{
        AdparBaseline2, AdparBaseline3, AdparBruteForce, AdparExact, AdparProblem, AdparSolution,
        AdparSolver, SolveScratch,
    };
    pub use crate::availability::{AvailabilityPdf, WorkerAvailability};
    pub use crate::batch::{
        BatchAlgorithm, BatchObjective, BatchOutcome, BatchStrat, Recommendation,
    };
    pub use crate::catalog::{
        CatalogDelta, CatalogMutation, CatalogStats, ConcurrentCatalog, DeltaSubscription,
        EpochSnapshot, RebuildPolicy, ShardPlan, SlotRemap, SnapshotReader, StrategyCatalog,
    };
    pub use crate::engine::BatchEngine;
    pub use crate::error::StratRecError;
    pub use crate::fairness::{FairnessPolicy, TenantShare};
    pub use crate::model::{
        DeploymentParameters, DeploymentRequest, Organization, RequestId, Strategy, StrategyId,
        Structure, Style, TaskType,
    };
    pub use crate::modeling::{LinearModel, ModelLibrary, ParameterKind, StrategyModel};
    pub use crate::stratrec::{
        AlternativeRecommendation, ServiceQuality, SnapshotSession, StratRec, StratRecConfig,
        StratRecReport, StratRecSession, TenantOutcome,
    };
    pub use crate::workforce::{
        AggregationCache, AggregationMode, EligibilityRule, Precision, RequestRequirement,
        ShardedAggregationCache, WorkforceMatrix,
    };
}
