//! The parallel batch engine: row-sharded workforce matrices and ADPaR
//! fan-out over a shared [`StrategyCatalog`].
//!
//! The paper's hot path is *Aggregator → workforce matrix → ADPaR fan-out*.
//! Both halves are embarrassingly parallel — workforce-matrix rows are
//! independent per request, and every unsatisfied request becomes an
//! independent ADPaR problem — yet the seed ran the matrix sequentially and
//! scattered ad-hoc scoped threads through `StratRec` for the fan-out. A
//! [`BatchEngine`] centralizes that parallelism:
//!
//! * [`BatchEngine::workforce_matrix`] shards the `m` matrix rows across a
//!   scoped thread pool in contiguous row chunks. Each thread owns a
//!   disjoint `&mut` slice of the row-major cell buffer, so no
//!   synchronization is needed and the output is **byte-identical** to the
//!   sequential [`WorkforceMatrix::compute_with_catalog`] regardless of
//!   thread count.
//! * [`BatchEngine::solve_adpar_batch`] fans a batch of unsatisfied
//!   requests out to [`AdparExact`] with one reusable
//!   [`SolveScratch`](crate::adpar::SolveScratch) **and** one reused
//!   relaxation buffer per worker thread
//!   ([`AdparProblem::with_catalog_reusing`]), so the steady state
//!   allocates nothing per problem beyond the returned solution. Results
//!   come back in input order.
//!
//! Determinism is a hard guarantee, not a best effort: every work item is
//! pure (it reads the shared catalog and writes only its own output slot),
//! so chunking changes wall-clock time but never a single output bit. The
//! parity suites in `tests/catalog_parity.rs` pin the engine against the
//! sequential paths.

use serde::{Deserialize, Serialize};

use stratrec_optim::topk::{self, TopKScratch};

use crate::adpar::{
    AdparBaseline2, AdparExact, AdparProblem, AdparSolution, AdparSolver, SolveScratch,
};
use crate::catalog::{CatalogDelta, ShardPlan, StrategyCatalog};
use crate::error::StratRecError;
use crate::model::DeploymentRequest;
use crate::modeling::{ModelLibrary, StrategyModel};
use crate::workforce::{
    self, kernel, AggregationMode, EligibilityRule, Precision, RequestRequirement, WorkforceMatrix,
};

/// A scoped-thread batch executor. Cheap to copy and hold inside
/// configuration structs; threads are spawned per call and joined before
/// returning, so the engine itself owns no resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BatchEngine {
    /// Worker-thread cap; `0` means "one per available core".
    threads: usize,
    /// Which workforce-matrix fill the engine runs ([`Precision::F64`] is
    /// the scalar reference path).
    precision: Precision,
}

impl BatchEngine {
    /// An engine using one worker per available core.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine capped at `threads` workers (`0` = one per available
    /// core).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            precision: Precision::default(),
        }
    }

    /// An engine that always runs on the calling thread — useful for
    /// differential tests and latency-sensitive single-request callers.
    #[must_use]
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// This engine with its workforce-matrix fill switched to `precision`
    /// ([`Precision::F32`] selects the columnar kernel; sharding and the
    /// kernel compose — each worker runs the kernel over its own row chunk).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The configured worker cap (`0` = auto).
    #[must_use]
    pub fn thread_cap(&self) -> usize {
        self.threads
    }

    /// The workforce-matrix fill this engine runs.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Workers actually used for `work_items` parallel items: the cap (or
    /// core count) bounded by the number of items, at least 1.
    #[must_use]
    pub fn effective_threads(&self, work_items: usize) -> usize {
        let cap = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        };
        cap.min(work_items).max(1)
    }

    /// Computes the workforce matrix for a batch over a shared catalog,
    /// sharding rows across scoped threads. Cells are identical to the
    /// sequential [`WorkforceMatrix::compute_with_catalog`] (and therefore
    /// to the linear-scan path) for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::MissingModel`] when a **live** catalog
    /// strategy has no fitted model in `models`; an empty batch never
    /// consults the model library (the sequential contract).
    pub fn workforce_matrix(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
    ) -> Result<WorkforceMatrix, StratRecError> {
        let mut model_buf = Vec::new();
        self.workforce_matrix_with_scratch(requests, catalog, models, rule, &mut model_buf)
    }

    /// [`Self::workforce_matrix`] reusing a caller-provided model buffer
    /// (`workforce::collect_live_models_into`), so repeated batch
    /// computations do zero model-collection allocation in steady state.
    ///
    /// # Errors
    ///
    /// As [`Self::workforce_matrix`].
    pub fn workforce_matrix_with_scratch(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        model_buf: &mut Vec<Option<StrategyModel>>,
    ) -> Result<WorkforceMatrix, StratRecError> {
        let mut matrix =
            WorkforceMatrix::from_cells_with_precision(0, 0, Vec::new(), self.precision);
        self.refill_workforce_matrix_with_scratch(
            requests,
            catalog,
            models,
            rule,
            &mut matrix,
            model_buf,
        )?;
        Ok(matrix)
    }

    /// Cold-refills an existing matrix in place —
    /// [`WorkforceMatrix::refill_with_catalog`] semantics (previous
    /// contents, shape, and precision discarded; cell allocation reused),
    /// sharded like [`Self::workforce_matrix`] and bit-identical to it.
    ///
    /// # Errors
    ///
    /// As [`Self::workforce_matrix`]; `matrix` is left empty on error.
    pub fn refill_workforce_matrix(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        matrix: &mut WorkforceMatrix,
    ) -> Result<(), StratRecError> {
        let mut model_buf = Vec::new();
        self.refill_workforce_matrix_with_scratch(
            requests,
            catalog,
            models,
            rule,
            matrix,
            &mut model_buf,
        )
    }

    /// [`Self::refill_workforce_matrix`] reusing a caller-provided model
    /// buffer.
    ///
    /// # Errors
    ///
    /// As [`Self::workforce_matrix`]; `matrix` is left empty on error.
    pub fn refill_workforce_matrix_with_scratch(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        matrix: &mut WorkforceMatrix,
        model_buf: &mut Vec<Option<StrategyModel>>,
    ) -> Result<(), StratRecError> {
        // Rows are slot-shaped: one column per catalog slot, so row width —
        // and the whole cell buffer — tracks `slot_count`, which a
        // `compact()` snaps back to `len()` (the live count). Long-lived
        // matrices follow the same compaction through
        // `WorkforceMatrix::remap_columns`.
        let cols = catalog.slot_count();
        let threads = self.effective_threads(requests.len());
        if threads < 2 || cols == 0 {
            // One worker (or nothing to shard): the sequential path IS the
            // engine's semantics, so delegate rather than duplicate it.
            return matrix.refill_with_catalog(
                requests,
                catalog,
                models,
                rule,
                self.precision,
                model_buf,
            );
        }
        let mut cells = matrix.take_cells();
        workforce::collect_live_models_into(catalog, models, model_buf)?;
        // Same per-precision start state as the sequential cold fill: the
        // scalar path needs `∞` rows, the kernel writes every cell (fresh
        // buffers for it come from `alloc_zeroed` — no pre-fill write pass).
        let len = requests.len() * cols;
        match self.precision {
            Precision::F64 => {
                cells.clear();
                cells.resize(len, f64::INFINITY);
            }
            Precision::F32 => {
                if cells.capacity() < len {
                    cells = vec![0.0; len];
                } else {
                    cells.resize(len, 0.0);
                }
            }
        }
        {
            let rows_per_chunk = requests.len().div_ceil(threads);
            let strategy_models = &*model_buf;
            // The kernel's coefficient columns are collected once and shared
            // read-only by every worker, like the model buffer.
            let coeffs = match self.precision {
                Precision::F64 => None,
                Precision::F32 => Some(kernel::KernelCoeffs::collect(strategy_models)),
            };
            let coeffs = coeffs.as_ref();
            std::thread::scope(|scope| {
                for (chunk_requests, chunk_cells) in requests
                    .chunks(rows_per_chunk)
                    .zip(cells.chunks_mut(rows_per_chunk * cols))
                {
                    scope.spawn(move || match coeffs {
                        None => {
                            for (request, row) in
                                chunk_requests.iter().zip(chunk_cells.chunks_mut(cols))
                            {
                                workforce::fill_catalog_row(
                                    request,
                                    catalog,
                                    strategy_models,
                                    rule,
                                    row,
                                );
                            }
                        }
                        // Row tiling is worker-local: cell values don't
                        // depend on the tiling, so the shard split stays
                        // bit-identical to the sequential fill.
                        Some(coeffs) => kernel::fill_catalog_rows_f32(
                            chunk_requests,
                            catalog,
                            coeffs,
                            rule,
                            chunk_cells,
                        ),
                    });
                }
            });
        }
        *matrix =
            WorkforceMatrix::from_cells_with_precision(requests.len(), cols, cells, self.precision);
        Ok(())
    }

    /// Applies a [`CatalogDelta`] to a long-lived workforce matrix
    /// ([`WorkforceMatrix::apply_delta`] semantics, bit-identical result),
    /// sharding the inserted-column model fill — the only `O(n · churn)`
    /// model-evaluation work — across scoped threads in contiguous row
    /// chunks, each thread owning a disjoint `&mut` slice of the cell
    /// buffer. The structural steps (remap, widening, retired-column `∞`
    /// writes) are pure `memmove`-class work and stay sequential. The model
    /// buffer is a reusable scratch (`workforce::collect_slot_models_into`
    /// over the inserted slots), so steady-state epochs allocate nothing for
    /// model collection.
    ///
    /// # Errors
    ///
    /// As [`WorkforceMatrix::apply_delta`]; a failed apply leaves the matrix
    /// unchanged.
    // One argument per pipeline ingredient, mirroring
    // `WorkforceMatrix::apply_delta_with_scratch`; bundling them would only
    // add a struct the two call sites immediately unpack.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_matrix_delta(
        &self,
        matrix: &mut WorkforceMatrix,
        delta: &CatalogDelta,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        models: &ModelLibrary,
        rule: EligibilityRule,
        model_buf: &mut Vec<Option<StrategyModel>>,
    ) -> Result<(), StratRecError> {
        let threads = self.effective_threads(requests.len());
        if threads < 2 || delta.inserted.is_empty() {
            return matrix
                .apply_delta_with_scratch(delta, requests, catalog, models, rule, model_buf);
        }
        matrix.apply_delta_structure(delta, requests, catalog, models, model_buf)?;
        let cols = matrix.cols();
        // The fill follows the *matrix's* precision (not the engine's): the
        // delta repairs the state some fill produced, and mixing precisions
        // within one matrix would break its parity contract.
        let precision = matrix.precision();
        let rows_per_chunk = requests.len().div_ceil(threads);
        let inserted = &delta.inserted;
        let inserted_models = &*model_buf;
        let cells = matrix.cells_mut();
        std::thread::scope(|scope| {
            for (chunk_requests, chunk_cells) in requests
                .chunks(rows_per_chunk)
                .zip(cells.chunks_mut(rows_per_chunk * cols))
            {
                scope.spawn(move || {
                    for (request, row) in chunk_requests.iter().zip(chunk_cells.chunks_mut(cols)) {
                        match precision {
                            Precision::F64 => workforce::fill_inserted_cells(
                                request,
                                catalog,
                                inserted,
                                inserted_models,
                                rule,
                                row,
                            ),
                            Precision::F32 => kernel::fill_inserted_cells_f32(
                                request,
                                catalog,
                                inserted,
                                inserted_models,
                                rule,
                                row,
                            ),
                        }
                    }
                });
            }
        });
        Ok(())
    }

    /// The two-level sharded aggregate, fanned out across scoped threads:
    /// each worker owns a disjoint set of shards (disjoint column
    /// sub-ranges of the matrix) and computes their shard-local top-k
    /// candidate lists with its own [`TopKScratch`]; the calling thread
    /// then k-way-merges every row's lists in ascending shard order.
    ///
    /// Because the shard split fixes *which* candidates each worker
    /// selects (never how they compare) and the merge runs sequentially in
    /// a deterministic order, the output is **bit-identical** to both
    /// [`WorkforceMatrix::aggregate_sharded`] and the flat
    /// [`WorkforceMatrix::aggregate`], for every shard count and thread
    /// count — the same guarantee the row-sharded matrix fill makes.
    ///
    /// # Panics
    ///
    /// Panics when the plan's width does not match the matrix's column
    /// count.
    #[must_use]
    pub fn aggregate_sharded(
        &self,
        matrix: &WorkforceMatrix,
        k: usize,
        mode: AggregationMode,
        plan: &ShardPlan,
    ) -> Vec<Option<RequestRequirement>> {
        assert_eq!(
            plan.cols(),
            matrix.cols(),
            "shard plan width must match the matrix's column count"
        );
        let rows = matrix.rows();
        let shards = plan.shard_count();
        let threads = self.effective_threads(shards);
        if threads < 2 || rows == 0 {
            return matrix.aggregate_sharded(k, mode, plan);
        }
        // `candidates[shard][row]`: each worker fills a disjoint chunk of
        // shards, reading shared rows and writing only its own lists.
        let mut candidates: Vec<Vec<Vec<(f64, usize)>>> = vec![vec![Vec::new(); rows]; shards];
        let shards_per_chunk = shards.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in candidates.chunks_mut(shards_per_chunk).enumerate() {
                let base_shard = chunk_idx * shards_per_chunk;
                scope.spawn(move || {
                    let mut scratch = TopKScratch::new();
                    for (offset, shard_rows) in chunk.iter_mut().enumerate() {
                        let range = plan.range(base_shard + offset);
                        for (row_idx, list) in shard_rows.iter_mut().enumerate() {
                            topk::k_smallest_candidates_into(
                                &matrix.row(row_idx)[range.clone()],
                                range.start,
                                k,
                                &mut scratch,
                                list,
                            );
                        }
                    }
                });
            }
        });
        let mut scratch = TopKScratch::new();
        let mut selected = Vec::new();
        let mut refs: Vec<&[(f64, usize)]> = Vec::with_capacity(shards);
        (0..rows)
            .map(|row_idx| {
                refs.clear();
                refs.extend(
                    candidates
                        .iter()
                        .map(|shard_rows| shard_rows[row_idx].as_slice()),
                );
                workforce::merge_row_requirement(
                    &refs,
                    row_idx,
                    k,
                    mode,
                    &mut scratch,
                    &mut selected,
                )
            })
            .collect()
    }

    /// Solves one catalog-backed ADPaR problem per entry of
    /// `request_indices` (indices into `requests`), sharding the problems
    /// across scoped threads with one reusable solver scratch per worker.
    /// The result vector is parallel to `request_indices` — output order is
    /// deterministic and independent of the thread count, and each solution
    /// is identical to a standalone [`AdparExact`] solve.
    #[must_use]
    pub fn solve_adpar_batch(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        request_indices: &[usize],
        k: usize,
    ) -> Vec<Result<AdparSolution, StratRecError>> {
        let solve_chunk =
            |indices: &[usize], out: &mut [Option<Result<AdparSolution, StratRecError>>]| {
                let mut scratch = SolveScratch::new();
                let mut relaxations: Vec<stratrec_geometry::Point3> = Vec::new();
                for (slot, &idx) in out.iter_mut().zip(indices) {
                    let problem = AdparProblem::with_catalog_reusing(
                        &requests[idx],
                        catalog,
                        k,
                        std::mem::take(&mut relaxations),
                    );
                    *slot = Some(AdparExact.solve_with_scratch(&problem, &mut scratch));
                    relaxations = problem.into_relaxations();
                }
            };

        let mut results: Vec<Option<Result<AdparSolution, StratRecError>>> =
            vec![None; request_indices.len()];
        let threads = self.effective_threads(request_indices.len());
        if threads < 2 {
            solve_chunk(request_indices, &mut results);
        } else {
            let chunk_size = request_indices.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (indices, slots) in request_indices
                    .chunks(chunk_size)
                    .zip(results.chunks_mut(chunk_size))
                {
                    scope.spawn(move || solve_chunk(indices, slots));
                }
            });
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every chunk slot is filled by its thread"))
            .collect()
    }

    /// The **degraded** counterpart of [`Self::solve_adpar_batch`]: the same
    /// deterministic fan-out, but every problem is answered by the cheap
    /// one-axis-at-a-time [`AdparBaseline2`] instead of the exact solver.
    /// Each solution is bit-identical to a standalone
    /// `AdparBaseline2.solve(&AdparProblem::with_catalog(..))` over the same
    /// catalog state — this is what a streaming front-end serves while its
    /// backpressure controller holds the pipeline in
    /// [`ServiceQuality::Degraded`](crate::stratrec::ServiceQuality).
    #[must_use]
    pub fn solve_adpar_batch_degraded(
        &self,
        requests: &[DeploymentRequest],
        catalog: &StrategyCatalog,
        request_indices: &[usize],
        k: usize,
    ) -> Vec<Result<AdparSolution, StratRecError>> {
        let solve_chunk =
            |indices: &[usize], out: &mut [Option<Result<AdparSolution, StratRecError>>]| {
                let mut relaxations: Vec<stratrec_geometry::Point3> = Vec::new();
                for (slot, &idx) in out.iter_mut().zip(indices) {
                    let problem = AdparProblem::with_catalog_reusing(
                        &requests[idx],
                        catalog,
                        k,
                        std::mem::take(&mut relaxations),
                    );
                    *slot = Some(AdparBaseline2.solve(&problem));
                    relaxations = problem.into_relaxations();
                }
            };

        let mut results: Vec<Option<Result<AdparSolution, StratRecError>>> =
            vec![None; request_indices.len()];
        let threads = self.effective_threads(request_indices.len());
        if threads < 2 {
            solve_chunk(request_indices, &mut results);
        } else {
            let chunk_size = request_indices.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (indices, slots) in request_indices
                    .chunks(chunk_size)
                    .zip(results.chunks_mut(chunk_size))
                {
                    scope.spawn(move || solve_chunk(indices, slots));
                }
            });
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every chunk slot is filled by its thread"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpar::AdparSolver;
    use crate::workforce::AggregationMode;

    fn setup() -> (
        Vec<DeploymentRequest>,
        Vec<crate::model::Strategy>,
        ModelLibrary,
    ) {
        (
            crate::examples_data::running_example_requests(),
            crate::examples_data::running_example_strategies(),
            crate::examples_data::running_example_models(),
        )
    }

    #[test]
    fn engine_matrix_matches_sequential_for_every_thread_count() {
        let (requests, strategies, models) = setup();
        let catalog = StrategyCatalog::from_slice(&strategies);
        for precision in Precision::ALL {
            for rule in [
                EligibilityRule::StrategyParameters,
                EligibilityRule::ModelOnly,
            ] {
                let sequential = WorkforceMatrix::compute_with_catalog_precision(
                    &requests, &catalog, &models, rule, precision,
                )
                .unwrap();
                for threads in [0, 1, 2, 3, 7] {
                    let parallel = BatchEngine::with_threads(threads)
                        .with_precision(precision)
                        .workforce_matrix(&requests, &catalog, &models, rule)
                        .unwrap();
                    assert_eq!(
                        sequential, parallel,
                        "{precision:?}, {rule:?}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_matrix_preserves_the_empty_batch_contract() {
        let (_, strategies, _) = setup();
        let catalog = StrategyCatalog::from_slice(&strategies);
        let empty_models = ModelLibrary::new();
        let matrix = BatchEngine::new()
            .workforce_matrix(&[], &catalog, &empty_models, EligibilityRule::default())
            .unwrap();
        assert_eq!(matrix.rows(), 0);
        assert_eq!(matrix.cols(), strategies.len());
        // Missing models still error for non-empty batches.
        let (requests, _, _) = setup();
        assert!(matches!(
            BatchEngine::new().workforce_matrix(
                &requests,
                &catalog,
                &empty_models,
                EligibilityRule::default()
            ),
            Err(StratRecError::MissingModel { .. })
        ));
    }

    #[test]
    fn engine_matrix_handles_an_empty_catalog() {
        let (requests, _, models) = setup();
        let catalog = StrategyCatalog::new(Vec::new());
        let matrix = BatchEngine::new()
            .workforce_matrix(&requests, &catalog, &models, EligibilityRule::default())
            .unwrap();
        assert_eq!(matrix.rows(), requests.len());
        assert_eq!(matrix.cols(), 0);
        assert!(matrix
            .aggregate(1, AggregationMode::Sum)
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn matrix_width_tracks_live_count_after_a_compacted_rebuild() {
        // Regression: the engine's row width is the catalog's slot count,
        // which grows with churn; after a `compact()` it must equal the
        // live count, not the historical slot count — and the remapped old
        // matrix must equal the freshly computed narrow one.
        let (requests, strategies, _) = setup();
        let mut catalog = StrategyCatalog::from_slice(&strategies);
        catalog.insert(crate::model::Strategy::from_params(
            10,
            crate::model::DeploymentParameters::clamped(0.85, 0.25, 0.3),
        ));
        let models = ModelLibrary::uniform_for(
            catalog.strategies(),
            crate::modeling::StrategyModel::uniform(1.0, 0.0),
        );
        assert!(catalog.retire(1));
        assert!(catalog.retire(3));
        assert_eq!(catalog.slot_count(), 5);
        assert_eq!(catalog.len(), 3);

        let rule = EligibilityRule::StrategyParameters;
        let wide = BatchEngine::sequential()
            .workforce_matrix(&requests, &catalog, &models, rule)
            .unwrap();
        assert_eq!(wide.cols(), catalog.slot_count());

        let remap = catalog.compact();
        assert_eq!(catalog.slot_count(), catalog.len());
        for threads in [1, 3, 0] {
            let narrow = BatchEngine::with_threads(threads)
                .workforce_matrix(&requests, &catalog, &models, rule)
                .unwrap();
            assert_eq!(narrow.cols(), catalog.len(), "{threads} threads");
            assert_eq!(
                narrow.cols(),
                3,
                "{threads} threads: width is the live count, not the 5 historical slots"
            );
            assert_eq!(wide.remap_columns(&remap), narrow, "{threads} threads");
        }
    }

    #[test]
    fn adpar_batch_matches_standalone_solves_in_order() {
        let (requests, strategies, _) = setup();
        let catalog = StrategyCatalog::from_slice(&strategies);
        let indices = [2, 0, 1, 0];
        for threads in [0, 1, 2, 3] {
            let batch = BatchEngine::with_threads(threads)
                .solve_adpar_batch(&requests, &catalog, &indices, 3);
            assert_eq!(batch.len(), indices.len(), "{threads} threads");
            for (&idx, result) in indices.iter().zip(&batch) {
                let expected =
                    AdparExact.solve(&AdparProblem::with_catalog(&requests[idx], &catalog, 3));
                assert_eq!(result, &expected, "{threads} threads, request {idx}");
            }
        }
    }

    #[test]
    fn degraded_adpar_batch_matches_standalone_baseline2_in_order() {
        let (requests, strategies, _) = setup();
        let catalog = StrategyCatalog::from_slice(&strategies);
        let indices = [2, 0, 1, 0];
        for threads in [0, 1, 2, 3] {
            let batch = BatchEngine::with_threads(threads)
                .solve_adpar_batch_degraded(&requests, &catalog, &indices, 3);
            assert_eq!(batch.len(), indices.len(), "{threads} threads");
            for (&idx, result) in indices.iter().zip(&batch) {
                let expected =
                    AdparBaseline2.solve(&AdparProblem::with_catalog(&requests[idx], &catalog, 3));
                assert_eq!(result, &expected, "{threads} threads, request {idx}");
            }
        }
        // Per-problem errors surface the same way as on the exact path.
        let failing =
            BatchEngine::new().solve_adpar_batch_degraded(&requests, &catalog, &[0, 1], 9);
        assert!(failing
            .iter()
            .all(|r| matches!(r, Err(StratRecError::NotEnoughStrategies { .. }))));
        assert!(BatchEngine::new()
            .solve_adpar_batch_degraded(&requests, &catalog, &[], 3)
            .is_empty());
    }

    #[test]
    fn adpar_batch_reports_per_problem_errors() {
        let (requests, strategies, _) = setup();
        let catalog = StrategyCatalog::from_slice(&strategies);
        // k larger than the catalog: every problem fails, none panics.
        let results = BatchEngine::new().solve_adpar_batch(&requests, &catalog, &[0, 1, 2], 9);
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(StratRecError::NotEnoughStrategies { .. }))));
        // An empty fan-out is a no-op.
        assert!(BatchEngine::new()
            .solve_adpar_batch(&requests, &catalog, &[], 3)
            .is_empty());
    }

    #[test]
    fn engine_delta_apply_matches_sequential_and_fresh_for_every_thread_count() {
        // Build a wider churn fixture so multiple row chunks exist, churn
        // it over several windows (one of them compacting), and pin the
        // engine-applied matrix against both the sequentially-applied one
        // and a fresh recompute, for every thread count.
        let strategies: Vec<crate::model::Strategy> = (0..30)
            .map(|i| {
                crate::model::Strategy::from_params(
                    i,
                    crate::model::DeploymentParameters::clamped(
                        0.3 + (i as f64 * 0.13) % 0.6,
                        0.2 + (i as f64 * 0.29) % 0.7,
                        0.1 + (i as f64 * 0.17) % 0.8,
                    ),
                )
            })
            .collect();
        let mut models = ModelLibrary::from_pairs(strategies.iter().map(|s| {
            let alpha = 0.4 + (s.id.0 % 40) as f64 / 100.0;
            (
                s.id,
                crate::modeling::StrategyModel::uniform(alpha, 1.0 - alpha),
            )
        }));
        let requests: Vec<DeploymentRequest> = (0..9)
            .map(|i| {
                crate::model::DeploymentRequest::new(
                    i,
                    crate::model::TaskType::SentenceTranslation,
                    crate::model::DeploymentParameters::clamped(
                        0.2 + (i as f64) * 0.08,
                        0.95 - (i as f64) * 0.05,
                        0.9 - (i as f64) * 0.04,
                    ),
                )
            })
            .collect();
        for (rule, precision) in [
            (EligibilityRule::StrategyParameters, Precision::F64),
            (EligibilityRule::ModelOnly, Precision::F64),
            (EligibilityRule::StrategyParameters, Precision::F32),
            (EligibilityRule::ModelOnly, Precision::F32),
        ] {
            let mut catalog = StrategyCatalog::with_policy(
                strategies.clone(),
                crate::catalog::RebuildPolicy::threshold(3),
            );
            let base = WorkforceMatrix::compute_with_catalog_precision(
                &requests, &catalog, &models, rule, precision,
            )
            .unwrap();
            let sub = catalog.subscribe_delta();
            let engines = [0_usize, 1, 2, 3, 7];
            let mut matrices: Vec<WorkforceMatrix> = engines.iter().map(|_| base.clone()).collect();
            let mut next_id = 30_u64;
            for window in 0..3 {
                for _ in 0..4 {
                    let strategy = crate::model::Strategy::from_params(
                        next_id,
                        crate::model::DeploymentParameters::clamped(
                            0.4 + (next_id as f64 * 0.11) % 0.5,
                            0.3 + (next_id as f64 * 0.23) % 0.6,
                            0.2 + (next_id as f64 * 0.31) % 0.7,
                        ),
                    );
                    let alpha = 0.4 + (next_id % 40) as f64 / 100.0;
                    models.insert(
                        strategy.id,
                        crate::modeling::StrategyModel::uniform(alpha, 1.0 - alpha),
                    );
                    catalog.insert(strategy);
                    next_id += 1;
                }
                let live = catalog.live_indices();
                assert!(catalog.retire(live[(window * 5) % live.len()]));
                assert!(catalog.retire(live[(window * 11 + 3) % live.len()]));
                if window == 1 {
                    catalog.compact();
                }
                let delta = catalog.take_delta(&sub).unwrap();
                let fresh = WorkforceMatrix::compute_with_catalog_precision(
                    &requests, &catalog, &models, rule, precision,
                )
                .unwrap();
                for (&threads, matrix) in engines.iter().zip(&mut matrices) {
                    let mut model_buf = Vec::new();
                    // The delta fill follows the *matrix's* precision, so the
                    // engine is left at its default here on purpose.
                    BatchEngine::with_threads(threads)
                        .apply_matrix_delta(
                            matrix,
                            &delta,
                            &requests,
                            &catalog,
                            &models,
                            rule,
                            &mut model_buf,
                        )
                        .unwrap();
                    assert_eq!(
                        matrix, &fresh,
                        "{precision:?}, {rule:?}, window {window}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_sharded_aggregate_matches_flat_for_every_thread_count() {
        // The engine's parallel two-level aggregate must be bit-identical
        // to the flat sequential aggregate across shard-count × thread-count
        // combinations, on a fixture wide enough for real chunking.
        let strategies: Vec<crate::model::Strategy> = (0..40)
            .map(|i| {
                crate::model::Strategy::from_params(
                    i,
                    crate::model::DeploymentParameters::clamped(
                        0.3 + (i as f64 * 0.13) % 0.6,
                        0.2 + (i as f64 * 0.29) % 0.7,
                        0.1 + (i as f64 * 0.17) % 0.8,
                    ),
                )
            })
            .collect();
        let models = ModelLibrary::from_pairs(strategies.iter().map(|s| {
            let alpha = 0.4 + (s.id.0 % 40) as f64 / 100.0;
            (
                s.id,
                crate::modeling::StrategyModel::uniform(alpha, 1.0 - alpha),
            )
        }));
        let requests: Vec<DeploymentRequest> = (0..7)
            .map(|i| {
                crate::model::DeploymentRequest::new(
                    i,
                    crate::model::TaskType::SentenceTranslation,
                    crate::model::DeploymentParameters::clamped(
                        0.2 + (i as f64) * 0.09,
                        0.95 - (i as f64) * 0.06,
                        0.9 - (i as f64) * 0.05,
                    ),
                )
            })
            .collect();
        let catalog = StrategyCatalog::from_slice(&strategies);
        for rule in [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ] {
            let matrix =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule).unwrap();
            for mode in [AggregationMode::Sum, AggregationMode::Max] {
                for k in [1, 3, 10] {
                    let flat = matrix.aggregate(k, mode);
                    for shards in [1, 2, 3, 8, 40] {
                        let plan = ShardPlan::uniform(shards, matrix.cols());
                        for threads in [0, 1, 2, 3, 7] {
                            let engine = BatchEngine::with_threads(threads);
                            let sharded = engine.aggregate_sharded(&matrix, k, mode, &plan);
                            assert_eq!(flat.len(), sharded.len());
                            for (a, b) in flat.iter().zip(&sharded) {
                                match (a, b) {
                                    (None, None) => {}
                                    (Some(a), Some(b)) => {
                                        assert_eq!(a.request_index, b.request_index);
                                        assert_eq!(
                                            a.strategy_indices, b.strategy_indices,
                                            "{rule:?}, {mode:?}, k={k}, {shards} shards, {threads} threads"
                                        );
                                        assert_eq!(
                                            a.workforce.to_bits(),
                                            b.workforce.to_bits(),
                                            "{rule:?}, {mode:?}, k={k}, {shards} shards, {threads} threads"
                                        );
                                    }
                                    _ => panic!(
                                        "feasibility diverged: {rule:?}, k={k}, {shards} shards, {threads} threads"
                                    ),
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn effective_threads_respects_cap_and_items() {
        assert_eq!(BatchEngine::sequential().effective_threads(100), 1);
        assert_eq!(BatchEngine::with_threads(4).effective_threads(2), 2);
        assert_eq!(BatchEngine::with_threads(4).effective_threads(100), 4);
        assert!(BatchEngine::new().effective_threads(100) >= 1);
        assert_eq!(BatchEngine::new().effective_threads(0), 1);
        assert_eq!(BatchEngine::with_threads(3).thread_cap(), 3);
        assert_eq!(BatchEngine::default(), BatchEngine::new());
    }
}
