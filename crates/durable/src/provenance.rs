//! Provenance reenactment: prove a logged decision from the recovered log.
//!
//! Every served batch can be logged as a [`DecisionRecord`] — epoch,
//! configuration, planned availability, the request batch and the returned
//! report. Because the solver pipeline is deterministic and consumes only
//! the availability *expectation*, those inputs pin the solve completely:
//! [`Provenance::reenact`] rebuilds the catalog at the decision's epoch
//! (checkpoint + bounded log replay) and re-runs
//! [`StratRec::process_batch_with_catalog`] against it;
//! [`Provenance::verify_decision`] then demands the reenacted report equal
//! the logged one **byte-for-byte** (compared through the record codec, so
//! even NaN payloads and signed zeros must match). A passing verification
//! is an end-to-end proof that the durable tier preserved everything the
//! recommendation depended on — eligibility, axis orders, the SoA kernel
//! state — not just the strategy list.
//!
//! The model library is supplied by the caller: fitted models are immutable
//! configuration in this system (the catalog churns, models do not), so
//! they are not journaled.

use std::path::{Path, PathBuf};

use stratrec_core::availability::AvailabilityPdf;
use stratrec_core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec_core::error::StratRecError;
use stratrec_core::modeling::ModelLibrary;
use stratrec_core::stratrec::{StratRec, StratRecReport};

use crate::checkpoint::{list_checkpoints, read_checkpoint};
use crate::record::{DecisionRecord, WalRecord};
use crate::recovery::{recover_catalog, replay};
use crate::wal::{self, WAL_FILE_NAME};
use crate::{DurableError, Result};

/// A loaded provenance view of a durable catalog directory: the validated
/// log prefix plus every decision in it.
#[derive(Debug)]
pub struct Provenance {
    dir: PathBuf,
    policy: RebuildPolicy,
    /// The valid mutation/decision prefix of the log.
    records: Vec<(u64, WalRecord)>,
    decisions: Vec<(u64, DecisionRecord)>,
}

impl Provenance {
    /// Loads (and validates, via a full recovery pass) the log at `dir`.
    /// Tail corruption is tolerated exactly as recovery tolerates it: the
    /// provenance view covers the valid prefix.
    pub fn load(dir: &Path, policy: RebuildPolicy) -> Result<Self> {
        let recovered = recover_catalog(dir, policy)?;
        let scan = wal::scan(&dir.join(WAL_FILE_NAME))?;
        let records = scan
            .records
            .into_iter()
            .filter(|(offset, _)| *offset < recovered.report.valid_len)
            .collect();
        Ok(Self {
            dir: dir.to_path_buf(),
            policy,
            records,
            decisions: recovered.decisions,
        })
    }

    /// Every logged decision in the valid prefix, offset-tagged, in log
    /// order.
    #[must_use]
    pub fn decisions(&self) -> &[(u64, DecisionRecord)] {
        &self.decisions
    }

    /// Rebuilds the catalog exactly as it was at `epoch`: the newest
    /// readable checkpoint at-or-before `epoch`, plus replay of the log
    /// records up to it.
    ///
    /// # Errors
    ///
    /// [`StratRecError::RecoveryMismatch`] (wrapped) when `epoch` is not
    /// reachable from the log — before the oldest checkpoint, past the
    /// valid prefix, or inside a corrupt region.
    pub fn state_at_epoch(&self, epoch: u64) -> Result<StrategyCatalog> {
        let checkpoint = self.newest_checkpoint_at_or_before(epoch)?;
        let mut catalog =
            StrategyCatalog::from_checkpoint_parts(checkpoint.slots, checkpoint.epoch, self.policy);
        let suffix: Vec<&(u64, WalRecord)> = self
            .records
            .iter()
            .filter(|(offset, _)| *offset >= checkpoint.wal_offset)
            .collect();
        replay(&mut catalog, &suffix, Some(epoch))?;
        if catalog.epoch() != epoch {
            return Err(DurableError::Corrupt(StratRecError::RecoveryMismatch {
                epoch,
                detail: format!(
                    "epoch {epoch} is not reachable from the log (replay reached {})",
                    catalog.epoch()
                ),
            }));
        }
        Ok(catalog)
    }

    /// Re-runs the solve a logged decision recorded, against the recovered
    /// catalog pinned at the decision's epoch. `models` is the fitted model
    /// library the system serves with (immutable configuration, not
    /// journaled).
    pub fn reenact(
        &self,
        decision: &DecisionRecord,
        models: &ModelLibrary,
    ) -> Result<StratRecReport> {
        let catalog = self.state_at_epoch(decision.epoch)?;
        let availability = AvailabilityPdf::certain(decision.availability);
        let layer = StratRec::new(decision.config);
        layer
            .process_batch_with_catalog(&decision.requests, &catalog, models, &availability)
            .map_err(DurableError::Corrupt)
    }

    /// Reenacts `decision` and demands the reproduced report be
    /// **byte-identical** to the logged one under the record codec.
    ///
    /// # Errors
    ///
    /// [`StratRecError::RecoveryMismatch`] (wrapped) when the reenacted
    /// report differs in any way from what was served.
    pub fn verify_decision(&self, decision: &DecisionRecord, models: &ModelLibrary) -> Result<()> {
        let reenacted_report = self.reenact(decision, models)?;
        let reenacted = DecisionRecord {
            report: reenacted_report,
            ..decision.clone()
        };
        let logged_bytes = WalRecord::Decision(decision.clone()).encode();
        let reenacted_bytes = WalRecord::Decision(reenacted).encode();
        if logged_bytes != reenacted_bytes {
            return Err(DurableError::Corrupt(StratRecError::RecoveryMismatch {
                epoch: decision.epoch,
                detail: "reenacted decision is not byte-identical to the logged one".into(),
            }));
        }
        Ok(())
    }

    fn newest_checkpoint_at_or_before(&self, epoch: u64) -> Result<crate::checkpoint::Checkpoint> {
        for path in list_checkpoints(&self.dir)? {
            match read_checkpoint(&path) {
                Ok(checkpoint) if checkpoint.epoch <= epoch => return Ok(checkpoint),
                Ok(_) | Err(DurableError::Corrupt(_)) => continue,
                Err(error) => return Err(error),
            }
        }
        Err(DurableError::Corrupt(StratRecError::RecoveryMismatch {
            epoch,
            detail: format!("no checkpoint at or before epoch {epoch}"),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointPolicy;
    use crate::store::{DurableCatalog, DurableOptions};
    use crate::testutil::TempDir;
    use stratrec_core::model::{DeploymentParameters, Strategy};
    use stratrec_core::modeling::StrategyModel;
    use stratrec_core::stratrec::StratRecConfig;

    fn strategy(id: u64) -> Strategy {
        Strategy::from_params(
            id,
            DeploymentParameters::clamped(0.6 + (id as f64) * 0.01, 0.4, 0.35),
        )
    }

    fn serve_and_log(durable: &DurableCatalog, models: &ModelLibrary) -> DecisionRecord {
        let snapshot = durable.pin();
        let requests = stratrec_core::examples_data::running_example_requests();
        let availability = AvailabilityPdf::certain(0.8);
        let config = StratRecConfig::default();
        let report = StratRec::new(config)
            .process_batch_with_catalog(&requests, snapshot.catalog(), models, &availability)
            .unwrap();
        let decision = DecisionRecord {
            epoch: snapshot.epoch(),
            config,
            availability: availability.expectation().value(),
            requests,
            report,
        };
        durable.log_decision(&decision).unwrap();
        decision
    }

    #[test]
    fn decisions_reenact_byte_identically_across_churn_and_compaction() {
        let dir = TempDir::new("provenance-reenact");
        let catalog = StrategyCatalog::with_policy(
            stratrec_core::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(3),
        );
        let durable = DurableCatalog::create(
            dir.path(),
            catalog,
            DurableOptions {
                sync: false,
                checkpoint: CheckpointPolicy::EveryMutations(4),
            },
        )
        .unwrap();
        // Models for every strategy id that will ever exist in this test.
        let all: Vec<Strategy> = (0..40).map(strategy).collect();
        let mut models = ModelLibrary::uniform_for(&all, StrategyModel::uniform(0.1, 0.85));
        for s in stratrec_core::examples_data::running_example_strategies() {
            models.insert(s.id, StrategyModel::uniform(0.1, 0.85));
        }

        let mut logged = Vec::new();
        for round in 0..5_u64 {
            durable
                .update(|catalog| {
                    catalog.insert(strategy(10 + round * 2));
                    catalog.insert(strategy(11 + round * 2));
                    if round % 2 == 1 {
                        catalog.retire(round as usize);
                        catalog.compact();
                    }
                })
                .unwrap();
            logged.push(serve_and_log(&durable, &models));
        }
        drop(durable);

        let provenance = Provenance::load(dir.path(), RebuildPolicy::threshold(3)).unwrap();
        assert_eq!(provenance.decisions().len(), logged.len());
        for ((_, from_log), original) in provenance.decisions().iter().zip(&logged) {
            assert_eq!(from_log, original, "the log preserved the decision");
            provenance.verify_decision(from_log, &models).unwrap();
        }
    }

    #[test]
    fn a_tampered_decision_fails_verification() {
        let dir = TempDir::new("provenance-tamper");
        let catalog = StrategyCatalog::with_policy(
            stratrec_core::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(3),
        );
        let durable = DurableCatalog::create(
            dir.path(),
            catalog,
            DurableOptions {
                sync: false,
                checkpoint: CheckpointPolicy::Never,
            },
        )
        .unwrap();
        let models = ModelLibrary::uniform_for(
            &stratrec_core::examples_data::running_example_strategies(),
            StrategyModel::uniform(0.1, 0.85),
        );
        let decision = serve_and_log(&durable, &models);
        drop(durable);

        let provenance = Provenance::load(dir.path(), RebuildPolicy::threshold(3)).unwrap();
        let mut tampered = decision;
        tampered.report.batch.objective_value += 1.0;
        let error = provenance.verify_decision(&tampered, &models).unwrap_err();
        assert!(matches!(
            error,
            DurableError::Corrupt(StratRecError::RecoveryMismatch { .. })
        ));
    }

    #[test]
    fn unreachable_epochs_are_typed_errors() {
        let dir = TempDir::new("provenance-unreachable");
        let catalog = StrategyCatalog::with_policy(
            stratrec_core::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(3),
        );
        let durable = DurableCatalog::create(
            dir.path(),
            catalog,
            DurableOptions {
                sync: false,
                checkpoint: CheckpointPolicy::Never,
            },
        )
        .unwrap();
        durable
            .update(|catalog| {
                catalog.insert(strategy(10));
            })
            .unwrap();
        drop(durable);

        let provenance = Provenance::load(dir.path(), RebuildPolicy::threshold(3)).unwrap();
        assert!(provenance.state_at_epoch(1).is_ok());
        assert!(matches!(
            provenance.state_at_epoch(99).unwrap_err(),
            DurableError::Corrupt(StratRecError::RecoveryMismatch { epoch: 99, .. })
        ));
    }
}
