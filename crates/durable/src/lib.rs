//! # Durable catalog tier: write-ahead log, crash recovery, provenance
//!
//! Everything upstream of this crate keeps the strategy catalog in memory:
//! a crash loses the churn history and — worse for a marketplace — the
//! record of *which strategies were recommended to whom*. This crate adds
//! the persistence layer a production StratRec deployment needs, as a shell
//! around the in-memory
//! [`ConcurrentCatalog`](stratrec_core::catalog::ConcurrentCatalog) rather
//! than a rewrite of it:
//!
//! * [`wal`] — an append-only, length-prefixed, checksummed **write-ahead
//!   log** of catalog mutations (insert / retire / compact, mirroring
//!   [`CatalogMutation`](stratrec_core::catalog::CatalogMutation)) and of
//!   **deployment decisions** (epoch, requests, chosen strategy slots — the
//!   shape a `deployments` audit table has in MLOps systems).
//! * [`store`] — [`DurableCatalog`], the logged publication cell: every
//!   [`DurableCatalog::update`] appends the epoch's mutations to the WAL
//!   **before** the new snapshot becomes visible to any reader
//!   (log-before-publish, via
//!   [`ConcurrentCatalog::update_logged`](stratrec_core::catalog::ConcurrentCatalog::update_logged)),
//!   and fail-stops on a logging error instead of serving state that could
//!   not be made durable.
//! * [`checkpoint`] — periodic compacted snapshots of the catalog, written
//!   tmp-then-rename, bounding recovery cost by churn-since-checkpoint
//!   instead of total history. The WAL itself is never truncated: the full
//!   log *is* the provenance record.
//! * [`recovery`] — crash recovery: pick the newest readable checkpoint,
//!   replay the log suffix through the same public mutation API the live
//!   system uses, stop at the first invalid frame (torn write, checksum
//!   mismatch, out-of-sequence record) with a typed
//!   [`StratRecError::WalCorrupt`] naming the byte offset, and recover the
//!   last valid prefix.
//! * [`provenance`] — reenactment: rebuild the catalog pinned at the epoch
//!   a logged decision was served from and re-run the very same solve;
//!   [`Provenance::verify_decision`] proves the recovered state reproduces
//!   the logged recommendation **byte-identically**.
//!
//! The build environment is offline, so the on-disk format is hand-rolled:
//! a little-endian binary codec ([`codec`]) and a table-driven CRC-32
//! ([`crc`]) — no serde data formats, no external checksum crates.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod provenance;
pub mod record;
pub mod recovery;
pub mod store;
pub mod testutil;
pub mod wal;

use stratrec_core::error::StratRecError;

pub use checkpoint::{Checkpoint, CheckpointPolicy};
pub use provenance::Provenance;
pub use record::{DecisionRecord, WalRecord};
pub use recovery::{RecoveredState, RecoveryReport};
pub use store::{DurableCatalog, DurableOptions, Recovered};
pub use wal::{WalScan, WalWriter};

/// Errors of the durable tier. Wraps the I/O layer and the core catalog
/// errors behind one type whose [`std::error::Error::source`] chain keeps
/// the underlying cause reachable.
#[derive(Debug)]
pub enum DurableError {
    /// An operating-system I/O operation failed. `context` says which one
    /// (file and operation); the source chain carries the [`std::io::Error`].
    Io {
        /// What was being done when the error hit (e.g.
        /// `"append to wal.log"`).
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The log or a checkpoint failed validation
    /// ([`StratRecError::WalCorrupt`]) or replay contradicted the log
    /// ([`StratRecError::RecoveryMismatch`]); the core error is the source.
    Corrupt(StratRecError),
    /// A previous WAL append failed, so the in-memory catalog may be ahead
    /// of the durable state. The [`DurableCatalog`] fail-stops: every
    /// subsequent mutation is refused until the operator recovers from the
    /// log ([`DurableCatalog::recover`]).
    Poisoned,
}

impl DurableError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { context, .. } => write!(f, "durable catalog I/O failure: {context}"),
            Self::Corrupt(_) => write!(f, "durable catalog log failed validation"),
            Self::Poisoned => write!(
                f,
                "durable catalog is poisoned by an earlier write-ahead-log failure; \
                 recover from the log before mutating again"
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Corrupt(source) => Some(source),
            Self::Poisoned => None,
        }
    }
}

impl From<StratRecError> for DurableError {
    fn from(error: StratRecError) -> Self {
        Self::Corrupt(error)
    }
}

/// Convenience alias for results of the durable tier.
pub type Result<T, E = DurableError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn error_sources_chain_to_the_underlying_cause() {
        let io = DurableError::io("append to wal.log", std::io::Error::other("disk full"));
        assert!(format!("{io}").contains("wal.log"));
        let source = io.source().expect("io errors carry their cause");
        assert!(format!("{source}").contains("disk full"));

        let corrupt = DurableError::from(StratRecError::WalCorrupt {
            offset: 42,
            kind: "checksum mismatch".into(),
        });
        let source = corrupt.source().expect("corruption carries the core error");
        assert!(
            format!("{source}").contains("offset 42"),
            "the source names the byte offset"
        );
        assert!(
            source.downcast_ref::<StratRecError>().is_some(),
            "the chained source is the typed core error"
        );

        assert!(DurableError::Poisoned.source().is_none());
        assert!(format!("{}", DurableError::Poisoned).contains("poisoned"));
    }
}
