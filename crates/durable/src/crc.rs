//! Table-driven CRC-32 (IEEE 802.3 polynomial, the `zlib`/`gzip` variant).
//!
//! The offline build cannot pull a checksum crate, so the log frames carry
//! this hand-rolled implementation: reflected polynomial `0xEDB88320`,
//! initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — byte-compatible
//! with the ubiquitous `crc32fast::hash` / `zlib.crc32` so the on-disk
//! format stays verifiable with stock tools.

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0_u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
}

/// CRC-32 of `data` (IEEE, reflected, init/final-xor `0xFFFF_FFFF`).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in data {
        let index = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_check_values() {
        // The standard CRC-32/ISO-HDLC check vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn a_single_flipped_bit_changes_the_checksum() {
        let payload = b"write-ahead log record payload".to_vec();
        let reference = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut corrupted = payload.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
