//! Crash recovery: checkpoint load + log-suffix replay through the public
//! mutation API.
//!
//! Recovery never deserializes catalog *internals*: it rebuilds the
//! checkpointed state with
//! [`StrategyCatalog::from_checkpoint_parts`] and then replays the WAL
//! suffix by calling the very same [`StrategyCatalog::insert`] /
//! [`StrategyCatalog::retire`] / [`StrategyCatalog::compact`] the live
//! system uses — so a recovered catalog cannot reach a state the mutation
//! API could not. Every replayed record is cross-checked against what the
//! log said happened (the slot an insert landed on, the remap a compaction
//! produced, the epoch after each mutation):
//!
//! * an **out-of-sequence** record (duplicated tail frame, dropped frame)
//!   ends the valid prefix exactly like a torn frame does — typed
//!   [`StratRecError::WalCorrupt`] with the frame's byte offset, state kept
//!   at the last valid prefix;
//! * a record that is in sequence but **contradicts** the replay (an insert
//!   landing on a different slot, a different remap) means the log is
//!   internally inconsistent — recovery refuses to continue with a hard
//!   [`StratRecError::RecoveryMismatch`], because no prefix of such a log
//!   can be trusted to reproduce the recorded decisions.

use std::path::Path;

use stratrec_core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec_core::error::StratRecError;

use crate::checkpoint::{list_checkpoints, read_checkpoint, Checkpoint};
use crate::record::{DecisionRecord, WalRecord};
use crate::wal::{self, WAL_FILE_NAME};
use crate::{DurableError, Result};

/// What recovery found and rebuilt.
#[derive(Debug)]
pub struct RecoveredState {
    /// The recovered catalog, at the last durable epoch.
    pub catalog: StrategyCatalog,
    /// Every logged deployment decision in the valid prefix, with the byte
    /// offset of its WAL frame — the provenance rows.
    pub decisions: Vec<(u64, DecisionRecord)>,
    /// How the recovery went.
    pub report: RecoveryReport,
}

/// Diagnostics of one recovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Epoch of the recovered catalog.
    pub epoch: u64,
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// Mutation records replayed on top of the checkpoint.
    pub records_applied: usize,
    /// Length in bytes of the valid log prefix; re-opening the log for
    /// appending truncates to this.
    pub valid_len: u64,
    /// The corruption that ended the valid prefix (torn frame, checksum
    /// mismatch, out-of-sequence record), or `None` for a clean log.
    pub corruption: Option<StratRecError>,
}

/// Recovers the durable catalog directory `dir`: newest readable
/// checkpoint, then the valid WAL suffix.
///
/// # Errors
///
/// [`DurableError::Io`] when the directory or log cannot be read at all;
/// [`DurableError::Corrupt`] with [`StratRecError::RecoveryMismatch`] when
/// the log contradicts its own replay. Mere log-tail corruption is **not**
/// an error — it is reported in [`RecoveryReport::corruption`] with the
/// state recovered to the last valid prefix.
pub fn recover_catalog(dir: &Path, policy: RebuildPolicy) -> Result<RecoveredState> {
    let scan = wal::scan(&dir.join(WAL_FILE_NAME))?;
    let checkpoint = newest_usable_checkpoint(dir)?;
    let mut catalog =
        StrategyCatalog::from_checkpoint_parts(checkpoint.slots, checkpoint.epoch, policy);

    let suffix: Vec<&(u64, WalRecord)> = scan
        .records
        .iter()
        .filter(|(offset, _)| *offset >= checkpoint.wal_offset)
        .collect();
    let outcome = replay(&mut catalog, &suffix, None)?;

    let (valid_len, corruption) = match outcome.out_of_sequence {
        // Replay stopped early: the valid prefix ends at the offending
        // frame, before wherever the byte-level scan stopped.
        Some((offset, error)) => (offset, Some(error)),
        None => (scan.valid_len, scan.corruption),
    };
    // Provenance covers the whole valid prefix, not just the replayed
    // suffix: decisions before the newest checkpoint are history too — the
    // log is never truncated precisely so they stay reachable.
    let decisions = scan
        .records
        .into_iter()
        .filter(|(offset, _)| *offset < valid_len)
        .filter_map(|(offset, record)| match record {
            WalRecord::Decision(decision) => Some((offset, decision)),
            _ => None,
        })
        .collect();
    Ok(RecoveredState {
        report: RecoveryReport {
            epoch: catalog.epoch(),
            checkpoint_epoch: checkpoint.epoch,
            records_applied: outcome.applied,
            valid_len,
            corruption,
        },
        catalog,
        decisions,
    })
}

/// Picks the newest checkpoint in `dir` that reads back valid, skipping
/// corrupt ones (crash-mid-rename leftovers are already filtered by the
/// listing).
fn newest_usable_checkpoint(dir: &Path) -> Result<Checkpoint> {
    for path in list_checkpoints(dir)? {
        match read_checkpoint(&path) {
            Ok(checkpoint) => return Ok(checkpoint),
            Err(DurableError::Corrupt(_)) => continue,
            Err(error) => return Err(error),
        }
    }
    Err(DurableError::Corrupt(StratRecError::WalCorrupt {
        offset: 0,
        kind: "no readable checkpoint in the durable directory".into(),
    }))
}

/// Outcome of a replay pass.
#[derive(Debug)]
pub(crate) struct ReplayOutcome {
    /// Mutation records applied.
    pub applied: usize,
    /// The out-of-sequence record that ended the replay early, if any.
    pub out_of_sequence: Option<(u64, StratRecError)>,
}

/// Replays `records` (offset-tagged, already filtered to the suffix after
/// the checkpoint) onto `catalog`. Stops cleanly when `stop_at_epoch` is
/// reached; stops with an out-of-sequence note when a record does not
/// follow from the current state; hard-errors with
/// [`StratRecError::RecoveryMismatch`] when an in-sequence record
/// contradicts its own replay.
pub(crate) fn replay(
    catalog: &mut StrategyCatalog,
    records: &[&(u64, WalRecord)],
    stop_at_epoch: Option<u64>,
) -> Result<ReplayOutcome> {
    let mut applied = 0;
    let mut out_of_sequence = None;
    'records: for &&(offset, ref record) in records {
        if stop_at_epoch.is_some_and(|target| catalog.epoch() >= target) {
            break;
        }
        // An out-of-sequence record ends the valid prefix: keep everything
        // replayed so far, note the offending frame, stop.
        macro_rules! sequence_cut {
            ($($kind:tt)*) => {{
                out_of_sequence = Some((
                    offset,
                    StratRecError::WalCorrupt {
                        offset,
                        kind: format!($($kind)*),
                    },
                ));
                break 'records;
            }};
        }
        match record {
            WalRecord::Insert {
                slot,
                strategy,
                epoch_after,
            } => {
                if *epoch_after != catalog.epoch() + 1 {
                    sequence_cut!(
                        "epoch out of sequence (insert says epoch {epoch_after} follows {})",
                        catalog.epoch()
                    );
                }
                let landed = catalog.insert(strategy.clone());
                if landed != *slot {
                    return Err(mismatch(
                        *epoch_after,
                        format!("replayed insert landed on slot {landed}, the log says {slot}"),
                    ));
                }
                applied += 1;
            }
            WalRecord::Retire { slot, epoch_after } => {
                if *epoch_after != catalog.epoch() + 1 {
                    sequence_cut!(
                        "epoch out of sequence (retire says epoch {epoch_after} follows {})",
                        catalog.epoch()
                    );
                }
                if !catalog.retire(*slot) {
                    return Err(mismatch(
                        *epoch_after,
                        format!("replayed retire of slot {slot} found it not live"),
                    ));
                }
                applied += 1;
            }
            WalRecord::Compact {
                source_epoch,
                target_epoch,
                live_len,
                forward,
            } => {
                if *source_epoch != catalog.epoch() {
                    sequence_cut!(
                        "epoch out of sequence (compaction of epoch {source_epoch} at epoch {})",
                        catalog.epoch()
                    );
                }
                let remap = catalog.compact();
                if remap.source_epoch() != *source_epoch
                    || remap.target_epoch() != *target_epoch
                    || remap.live_len != *live_len
                    || remap.forward != *forward
                {
                    return Err(mismatch(
                        *target_epoch,
                        "replayed compaction produced a different slot remap".into(),
                    ));
                }
                applied += 1;
            }
            WalRecord::Decision(decision) => {
                if decision.epoch > catalog.epoch() {
                    sequence_cut!(
                        "decision references future epoch {} at epoch {}",
                        decision.epoch,
                        catalog.epoch()
                    );
                }
                // Valid: collected by the caller from the full valid
                // prefix, not here.
            }
        }
    }
    if let Some(cut) = out_of_sequence {
        return Ok(ReplayOutcome {
            applied,
            out_of_sequence: Some(cut),
        });
    }
    if let Some(target) = stop_at_epoch {
        if catalog.epoch() != target {
            return Err(mismatch(
                target,
                format!(
                    "epoch {target} is not reachable from the log (stopped at {})",
                    catalog.epoch()
                ),
            ));
        }
    }
    Ok(ReplayOutcome {
        applied,
        out_of_sequence: None,
    })
}

fn mismatch(epoch: u64, detail: String) -> DurableError {
    DurableError::Corrupt(StratRecError::RecoveryMismatch { epoch, detail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{write_checkpoint, CheckpointPolicy};
    use crate::store::{DurableCatalog, DurableOptions};
    use crate::testutil::TempDir;
    use stratrec_core::model::{DeploymentParameters, Strategy};

    fn options() -> DurableOptions {
        DurableOptions {
            sync: false,
            checkpoint: CheckpointPolicy::Never,
        }
    }

    fn seeded(dir: &Path) -> DurableCatalog {
        let catalog = StrategyCatalog::with_policy(
            stratrec_core::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(3),
        );
        DurableCatalog::create(dir, catalog, options()).unwrap()
    }

    fn strategy(id: u64) -> Strategy {
        Strategy::from_params(id, DeploymentParameters::clamped(0.8, 0.3, 0.3))
    }

    #[test]
    fn a_clean_log_recovers_the_exact_observable_state() {
        let dir = TempDir::new("recover-clean");
        let durable = seeded(dir.path());
        durable
            .update(|catalog| {
                catalog.insert(strategy(10));
                catalog.retire(0);
            })
            .unwrap();
        durable.update(|catalog| catalog.compact()).unwrap();
        let live = durable.pin();

        let recovered = recover_catalog(dir.path(), RebuildPolicy::threshold(3)).unwrap();
        assert!(recovered.report.corruption.is_none());
        assert_eq!(recovered.report.epoch, live.epoch());
        assert_eq!(recovered.report.records_applied, 3);
        assert_eq!(recovered.catalog.strategies(), live.strategies());
        let loosest = DeploymentParameters::default();
        assert_eq!(
            recovered.catalog.eligible_for(&loosest),
            live.eligible_for(&loosest)
        );
    }

    #[test]
    fn a_duplicated_tail_record_is_typed_corruption_at_its_offset() {
        let dir = TempDir::new("recover-dup");
        let durable = seeded(dir.path());
        durable
            .update(|catalog| {
                catalog.insert(strategy(10));
            })
            .unwrap();
        durable.update(|catalog| catalog.retire(1)).unwrap();
        let epoch_before = durable.epoch();
        drop(durable);

        // Duplicate the last frame (an operator `cat`ing logs together, or a
        // replayed network append).
        let path = dir.path().join(WAL_FILE_NAME);
        let bytes = std::fs::read(&path).unwrap();
        let scan = wal::scan_bytes(&bytes);
        let last_offset = scan.records.last().unwrap().0 as usize;
        let mut duplicated = bytes.clone();
        duplicated.extend_from_slice(&bytes[last_offset..]);
        std::fs::write(&path, &duplicated).unwrap();

        let recovered = recover_catalog(dir.path(), RebuildPolicy::threshold(3)).unwrap();
        match recovered.report.corruption {
            Some(StratRecError::WalCorrupt { offset, ref kind }) => {
                assert_eq!(offset as usize, bytes.len(), "the duplicate frame's offset");
                assert!(kind.contains("out of sequence"), "kind was {kind:?}");
            }
            ref other => panic!("expected WalCorrupt, got {other:?}"),
        }
        assert_eq!(recovered.report.valid_len, bytes.len() as u64);
        assert_eq!(
            recovered.report.epoch, epoch_before,
            "recovered to the state before the duplicate"
        );
    }

    #[test]
    fn recovery_resumes_from_the_newest_checkpoint_and_falls_back_past_corrupt_ones() {
        let dir = TempDir::new("recover-ckpt");
        let durable = seeded(dir.path());
        for round in 0..4_u64 {
            durable
                .update(|catalog| {
                    catalog.insert(strategy(100 + round));
                })
                .unwrap();
        }
        // Hand-write a checkpoint at the current state: replay should apply
        // zero records on top of it.
        let snapshot = durable.pin();
        let wal_len = durable.wal_len().unwrap();
        let newest = write_checkpoint(
            dir.path(),
            &crate::checkpoint::Checkpoint::capture(snapshot.catalog(), wal_len),
        )
        .unwrap();
        let recovered = recover_catalog(dir.path(), RebuildPolicy::threshold(3)).unwrap();
        assert_eq!(recovered.report.checkpoint_epoch, snapshot.epoch());
        assert_eq!(recovered.report.records_applied, 0);
        assert_eq!(recovered.report.epoch, snapshot.epoch());

        // Corrupt that checkpoint: recovery falls back to the genesis one
        // and replays the full log to the same state.
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let fallback = recover_catalog(dir.path(), RebuildPolicy::threshold(3)).unwrap();
        assert_eq!(fallback.report.checkpoint_epoch, 0);
        assert_eq!(fallback.report.records_applied, 4);
        assert_eq!(fallback.report.epoch, snapshot.epoch());
        assert_eq!(fallback.catalog.strategies(), snapshot.strategies());
    }

    #[test]
    fn decisions_in_the_log_come_back_with_their_offsets() {
        let dir = TempDir::new("recover-decisions");
        let durable = seeded(dir.path());
        durable
            .update(|catalog| {
                catalog.insert(strategy(10));
            })
            .unwrap();
        let decision = DecisionRecord {
            epoch: durable.epoch(),
            config: stratrec_core::stratrec::StratRecConfig::default(),
            availability: 0.8,
            requests: stratrec_core::examples_data::running_example_requests(),
            report: stratrec_core::stratrec::StratRecReport {
                availability: stratrec_core::availability::WorkerAvailability::new(0.8).unwrap(),
                batch: stratrec_core::batch::BatchOutcome::default(),
                alternatives: Vec::new(),
            },
        };
        let offset = durable.log_decision(&decision).unwrap();
        let recovered = recover_catalog(dir.path(), RebuildPolicy::threshold(3)).unwrap();
        assert_eq!(recovered.decisions.len(), 1);
        assert_eq!(recovered.decisions[0].0, offset);
        assert_eq!(recovered.decisions[0].1, decision);
    }
}
