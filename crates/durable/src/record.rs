//! The write-ahead-log record types and their on-disk payload codec.
//!
//! A WAL payload is `tag: u8` followed by the variant body. Mutation
//! records (tags 1–3) mirror
//! [`CatalogMutation`](stratrec_core::catalog::CatalogMutation) — what the
//! journal of a logged [`ConcurrentCatalog::update_logged`](stratrec_core::catalog::ConcurrentCatalog::update_logged)
//! epoch drains — each carrying the catalog epoch after the mutation so
//! replay can detect out-of-sequence frames (a duplicated or dropped
//! record). The compaction record stores the raw remap parts
//! (`forward` / `live_len` / epochs) rather than a
//! [`SlotRemap`](stratrec_core::catalog::SlotRemap): recovery re-runs the
//! compaction through the public API and *verifies* the produced remap
//! against these fields, so a remap can never enter the system without the
//! catalog itself deriving it.
//!
//! The decision record (tag 4) is the provenance row: the epoch the batch
//! was served from, the solver configuration, the planned availability, the
//! full request batch, and the report that was returned — everything
//! [`crate::provenance`] needs to reenact the solve and compare
//! byte-for-byte. `f64`s are stored as IEEE-754 bit patterns, so
//! "byte-identical" is exact, not approximate.

use stratrec_core::adpar::AdparSolution;
use stratrec_core::availability::WorkerAvailability;
use stratrec_core::batch::{BatchObjective, BatchOutcome, Recommendation};
use stratrec_core::catalog::CatalogMutation;
use stratrec_core::error::StratRecError;
use stratrec_core::model::{
    DeploymentParameters, DeploymentRequest, Organization, RequestId, Strategy, Structure, Style,
    TaskType,
};
use stratrec_core::stratrec::{AlternativeRecommendation, StratRecConfig, StratRecReport};
use stratrec_core::workforce::AggregationMode;
use stratrec_geometry::Point3;

use crate::codec::{ByteReader, ByteWriter, DecodeError};

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A strategy was inserted at `slot`; the catalog epoch became
    /// `epoch_after`.
    Insert {
        /// Slot the insert landed on (replay must land on the same one).
        slot: usize,
        /// The inserted strategy, verbatim.
        strategy: Strategy,
        /// Catalog epoch after the insert.
        epoch_after: u64,
    },
    /// The live strategy at `slot` was retired; the epoch became
    /// `epoch_after`.
    Retire {
        /// Slot that was retired.
        slot: usize,
        /// Catalog epoch after the retire.
        epoch_after: u64,
    },
    /// The catalog was compacted. Stores the raw parts of the produced
    /// [`SlotRemap`](stratrec_core::catalog::SlotRemap); replay re-runs the
    /// compaction and verifies its remap against them.
    Compact {
        /// Epoch the compaction was applied at.
        source_epoch: u64,
        /// Epoch after the compaction.
        target_epoch: u64,
        /// Live slots after compaction (the new dense range).
        live_len: usize,
        /// `forward[old] = Some(new)` for survivors, `None` for reclaimed.
        forward: Vec<Option<usize>>,
    },
    /// A deployment decision served to requesters — the provenance row.
    Decision(DecisionRecord),
}

/// A logged deployment decision: which strategies were recommended to which
/// requests, from which catalog epoch, under which configuration — the
/// shape of a `deployments` audit table, plus the inputs needed to reenact
/// the solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// The epoch of the snapshot the batch was served from.
    pub epoch: u64,
    /// Solver configuration the batch ran with.
    pub config: StratRecConfig,
    /// Expected worker availability the batch was planned with (the
    /// expectation of the availability distribution; the pipeline consumes
    /// only the expectation, so this reproduces the solve exactly).
    pub availability: f64,
    /// The request batch, verbatim.
    pub requests: Vec<DeploymentRequest>,
    /// The report that was returned to the requesters.
    pub report: StratRecReport,
}

const TAG_INSERT: u8 = 1;
const TAG_RETIRE: u8 = 2;
const TAG_COMPACT: u8 = 3;
const TAG_DECISION: u8 = 4;

impl WalRecord {
    /// The WAL record for a journaled catalog mutation.
    #[must_use]
    pub fn from_mutation(mutation: &CatalogMutation) -> Self {
        match mutation {
            CatalogMutation::Insert {
                slot,
                strategy,
                epoch_after,
            } => Self::Insert {
                slot: *slot,
                strategy: strategy.clone(),
                epoch_after: *epoch_after,
            },
            CatalogMutation::Retire { slot, epoch_after } => Self::Retire {
                slot: *slot,
                epoch_after: *epoch_after,
            },
            CatalogMutation::Compact { remap } => Self::Compact {
                source_epoch: remap.source_epoch(),
                target_epoch: remap.target_epoch(),
                live_len: remap.live_len,
                forward: remap.forward.clone(),
            },
        }
    }

    /// The catalog epoch after this record applies (`None` for decisions,
    /// which do not mutate the catalog).
    #[must_use]
    pub fn epoch_after(&self) -> Option<u64> {
        match self {
            Self::Insert { epoch_after, .. } | Self::Retire { epoch_after, .. } => {
                Some(*epoch_after)
            }
            Self::Compact { target_epoch, .. } => Some(*target_epoch),
            Self::Decision(_) => None,
        }
    }

    /// Encodes the record payload (tag + body; framing is the WAL's job).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut writer = ByteWriter::new();
        match self {
            Self::Insert {
                slot,
                strategy,
                epoch_after,
            } => {
                writer.u8(TAG_INSERT);
                writer.usize(*slot);
                encode_strategy(&mut writer, strategy);
                writer.u64(*epoch_after);
            }
            Self::Retire { slot, epoch_after } => {
                writer.u8(TAG_RETIRE);
                writer.usize(*slot);
                writer.u64(*epoch_after);
            }
            Self::Compact {
                source_epoch,
                target_epoch,
                live_len,
                forward,
            } => {
                writer.u8(TAG_COMPACT);
                writer.u64(*source_epoch);
                writer.u64(*target_epoch);
                writer.usize(*live_len);
                writer.usize(forward.len());
                for entry in forward {
                    match entry {
                        Some(new) => {
                            writer.bool(true);
                            writer.usize(*new);
                        }
                        None => writer.bool(false),
                    }
                }
            }
            Self::Decision(decision) => {
                writer.u8(TAG_DECISION);
                encode_decision(&mut writer, decision);
            }
        }
        writer.into_bytes()
    }

    /// Decodes a record payload, rejecting unknown tags, truncation and
    /// trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut reader = ByteReader::new(payload);
        let record = match reader.u8()? {
            TAG_INSERT => {
                let slot = reader.usize()?;
                let strategy = decode_strategy(&mut reader)?;
                let epoch_after = reader.u64()?;
                Self::Insert {
                    slot,
                    strategy,
                    epoch_after,
                }
            }
            TAG_RETIRE => Self::Retire {
                slot: reader.usize()?,
                epoch_after: reader.u64()?,
            },
            TAG_COMPACT => {
                let source_epoch = reader.u64()?;
                let target_epoch = reader.u64()?;
                let live_len = reader.usize()?;
                let len = reader.usize()?;
                let mut forward = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    forward.push(if reader.bool()? {
                        Some(reader.usize()?)
                    } else {
                        None
                    });
                }
                Self::Compact {
                    source_epoch,
                    target_epoch,
                    live_len,
                    forward,
                }
            }
            TAG_DECISION => Self::Decision(decode_decision(&mut reader)?),
            _ => {
                return Err(DecodeError {
                    at: 0,
                    what: "unknown record tag",
                })
            }
        };
        reader.finish()?;
        Ok(record)
    }
}

fn encode_params(writer: &mut ByteWriter, params: &DeploymentParameters) {
    writer.f64(params.quality);
    writer.f64(params.cost);
    writer.f64(params.latency);
}

fn decode_params(reader: &mut ByteReader<'_>) -> Result<DeploymentParameters, DecodeError> {
    Ok(DeploymentParameters {
        quality: reader.f64()?,
        cost: reader.f64()?,
        latency: reader.f64()?,
    })
}

fn encode_strategy(writer: &mut ByteWriter, strategy: &Strategy) {
    writer.u64(strategy.id.0);
    writer.u8(match strategy.structure {
        Structure::Sequential => 0,
        Structure::Simultaneous => 1,
    });
    writer.u8(match strategy.organization {
        Organization::Independent => 0,
        Organization::Collaborative => 1,
    });
    writer.u8(match strategy.style {
        Style::CrowdOnly => 0,
        Style::Hybrid => 1,
    });
    encode_params(writer, &strategy.params);
}

fn decode_strategy(reader: &mut ByteReader<'_>) -> Result<Strategy, DecodeError> {
    let id = reader.u64()?;
    let structure = match reader.u8()? {
        0 => Structure::Sequential,
        1 => Structure::Simultaneous,
        _ => return Err(invalid_tag(reader)),
    };
    let organization = match reader.u8()? {
        0 => Organization::Independent,
        1 => Organization::Collaborative,
        _ => return Err(invalid_tag(reader)),
    };
    let style = match reader.u8()? {
        0 => Style::CrowdOnly,
        1 => Style::Hybrid,
        _ => return Err(invalid_tag(reader)),
    };
    let params = decode_params(reader)?;
    Ok(Strategy {
        id: stratrec_core::model::StrategyId(id),
        structure,
        organization,
        style,
        params,
    })
}

fn encode_request(writer: &mut ByteWriter, request: &DeploymentRequest) {
    writer.u64(request.id.0);
    writer.u8(match request.task_type {
        TaskType::SentenceTranslation => 0,
        TaskType::TextCreation => 1,
        TaskType::TextSummarization => 2,
        TaskType::PuzzleSolving => 3,
    });
    encode_params(writer, &request.params);
}

fn decode_request(reader: &mut ByteReader<'_>) -> Result<DeploymentRequest, DecodeError> {
    let id = reader.u64()?;
    let task_type = match reader.u8()? {
        0 => TaskType::SentenceTranslation,
        1 => TaskType::TextCreation,
        2 => TaskType::TextSummarization,
        3 => TaskType::PuzzleSolving,
        _ => return Err(invalid_tag(reader)),
    };
    let params = decode_params(reader)?;
    Ok(DeploymentRequest {
        id: RequestId(id),
        task_type,
        params,
    })
}

fn encode_config(writer: &mut ByteWriter, config: &StratRecConfig) {
    writer.usize(config.k);
    writer.u8(match config.objective {
        BatchObjective::Throughput => 0,
        BatchObjective::Payoff => 1,
    });
    writer.u8(match config.aggregation {
        AggregationMode::Sum => 0,
        AggregationMode::Max => 1,
    });
}

fn decode_config(reader: &mut ByteReader<'_>) -> Result<StratRecConfig, DecodeError> {
    let k = reader.usize()?;
    let objective = match reader.u8()? {
        0 => BatchObjective::Throughput,
        1 => BatchObjective::Payoff,
        _ => return Err(invalid_tag(reader)),
    };
    let aggregation = match reader.u8()? {
        0 => AggregationMode::Sum,
        1 => AggregationMode::Max,
        _ => return Err(invalid_tag(reader)),
    };
    Ok(StratRecConfig {
        k,
        objective,
        aggregation,
    })
}

fn encode_usizes(writer: &mut ByteWriter, values: &[usize]) {
    writer.usize(values.len());
    for &value in values {
        writer.usize(value);
    }
}

fn decode_usizes(reader: &mut ByteReader<'_>) -> Result<Vec<usize>, DecodeError> {
    let len = reader.usize()?;
    let mut values = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        values.push(reader.usize()?);
    }
    Ok(values)
}

fn encode_recommendation(writer: &mut ByteWriter, rec: &Recommendation) {
    writer.usize(rec.request_index);
    writer.u64(rec.request_id.0);
    encode_usizes(writer, &rec.strategy_indices);
    writer.f64(rec.workforce);
    writer.f64(rec.objective_contribution);
}

fn decode_recommendation(reader: &mut ByteReader<'_>) -> Result<Recommendation, DecodeError> {
    Ok(Recommendation {
        request_index: reader.usize()?,
        request_id: RequestId(reader.u64()?),
        strategy_indices: decode_usizes(reader)?,
        workforce: reader.f64()?,
        objective_contribution: reader.f64()?,
    })
}

fn encode_solution(writer: &mut ByteWriter, solution: &AdparSolution) {
    encode_params(writer, &solution.alternative);
    writer.f64(solution.relaxation.x);
    writer.f64(solution.relaxation.y);
    writer.f64(solution.relaxation.z);
    encode_usizes(writer, &solution.strategy_indices);
    writer.f64(solution.distance);
}

fn decode_solution(reader: &mut ByteReader<'_>) -> Result<AdparSolution, DecodeError> {
    Ok(AdparSolution {
        alternative: decode_params(reader)?,
        relaxation: Point3 {
            x: reader.f64()?,
            y: reader.f64()?,
            z: reader.f64()?,
        },
        strategy_indices: decode_usizes(reader)?,
        distance: reader.f64()?,
    })
}

fn encode_error(writer: &mut ByteWriter, error: &StratRecError) {
    match error {
        StratRecError::ParameterOutOfRange { parameter, value } => {
            writer.u8(0);
            writer.str(parameter);
            writer.f64(*value);
        }
        StratRecError::InvalidDistribution(message) => {
            writer.u8(1);
            writer.str(message);
        }
        StratRecError::ZeroCardinality => writer.u8(2),
        StratRecError::EmptyStrategySet => writer.u8(3),
        StratRecError::NotEnoughStrategies {
            available,
            requested,
        } => {
            writer.u8(4);
            writer.usize(*available);
            writer.usize(*requested);
        }
        StratRecError::MissingModel { strategy } => {
            writer.u8(5);
            writer.u64(*strategy);
        }
        StratRecError::StaleSubscription { id } => {
            writer.u8(6);
            writer.usize(*id);
        }
        StratRecError::StaleCatalog { expected, found } => {
            writer.u8(7);
            writer.u64(*expected);
            writer.u64(*found);
        }
        StratRecError::WalCorrupt { offset, kind } => {
            writer.u8(8);
            writer.u64(*offset);
            writer.str(kind);
        }
        StratRecError::RecoveryMismatch { epoch, detail } => {
            writer.u8(9);
            writer.u64(*epoch);
            writer.str(detail);
        }
        StratRecError::InvalidFairnessPolicy(message) => {
            writer.u8(10);
            writer.str(message);
        }
        StratRecError::AdmissionRejected {
            queue_depth,
            capacity,
        } => {
            writer.u8(11);
            writer.usize(*queue_depth);
            writer.usize(*capacity);
        }
        StratRecError::DeadlineExceeded {
            remaining_ms,
            estimated_ms,
        } => {
            writer.u8(12);
            writer.u64(*remaining_ms);
            writer.u64(*estimated_ms);
        }
    }
}

fn decode_error(reader: &mut ByteReader<'_>) -> Result<StratRecError, DecodeError> {
    Ok(match reader.u8()? {
        0 => StratRecError::ParameterOutOfRange {
            parameter: reader.str()?,
            value: reader.f64()?,
        },
        1 => StratRecError::InvalidDistribution(reader.str()?),
        2 => StratRecError::ZeroCardinality,
        3 => StratRecError::EmptyStrategySet,
        4 => StratRecError::NotEnoughStrategies {
            available: reader.usize()?,
            requested: reader.usize()?,
        },
        5 => StratRecError::MissingModel {
            strategy: reader.u64()?,
        },
        6 => StratRecError::StaleSubscription {
            id: reader.usize()?,
        },
        7 => StratRecError::StaleCatalog {
            expected: reader.u64()?,
            found: reader.u64()?,
        },
        8 => StratRecError::WalCorrupt {
            offset: reader.u64()?,
            kind: reader.str()?,
        },
        9 => StratRecError::RecoveryMismatch {
            epoch: reader.u64()?,
            detail: reader.str()?,
        },
        10 => StratRecError::InvalidFairnessPolicy(reader.str()?),
        11 => StratRecError::AdmissionRejected {
            queue_depth: reader.usize()?,
            capacity: reader.usize()?,
        },
        12 => StratRecError::DeadlineExceeded {
            remaining_ms: reader.u64()?,
            estimated_ms: reader.u64()?,
        },
        _ => return Err(invalid_tag(reader)),
    })
}

fn encode_report(writer: &mut ByteWriter, report: &StratRecReport) {
    writer.f64(report.availability.value());
    writer.usize(report.batch.satisfied.len());
    for rec in &report.batch.satisfied {
        encode_recommendation(writer, rec);
    }
    encode_usizes(writer, &report.batch.unsatisfied);
    writer.f64(report.batch.objective_value);
    writer.f64(report.batch.workforce_used);
    writer.usize(report.alternatives.len());
    for alternative in &report.alternatives {
        writer.usize(alternative.request_index);
        match &alternative.solution {
            Ok(solution) => {
                writer.bool(true);
                encode_solution(writer, solution);
            }
            Err(error) => {
                writer.bool(false);
                encode_error(writer, error);
            }
        }
    }
}

fn decode_report(reader: &mut ByteReader<'_>) -> Result<StratRecReport, DecodeError> {
    let availability = WorkerAvailability::new(reader.f64()?).map_err(|_| DecodeError {
        at: reader.position(),
        what: "invalid availability value",
    })?;
    let satisfied_len = reader.usize()?;
    let mut satisfied = Vec::with_capacity(satisfied_len.min(1 << 16));
    for _ in 0..satisfied_len {
        satisfied.push(decode_recommendation(reader)?);
    }
    let unsatisfied = decode_usizes(reader)?;
    let objective_value = reader.f64()?;
    let workforce_used = reader.f64()?;
    let alternatives_len = reader.usize()?;
    let mut alternatives = Vec::with_capacity(alternatives_len.min(1 << 16));
    for _ in 0..alternatives_len {
        let request_index = reader.usize()?;
        let solution = if reader.bool()? {
            Ok(decode_solution(reader)?)
        } else {
            Err(decode_error(reader)?)
        };
        alternatives.push(AlternativeRecommendation {
            request_index,
            solution,
        });
    }
    Ok(StratRecReport {
        availability,
        batch: BatchOutcome {
            satisfied,
            unsatisfied,
            objective_value,
            workforce_used,
        },
        alternatives,
    })
}

fn encode_decision(writer: &mut ByteWriter, decision: &DecisionRecord) {
    writer.u64(decision.epoch);
    encode_config(writer, &decision.config);
    writer.f64(decision.availability);
    writer.usize(decision.requests.len());
    for request in &decision.requests {
        encode_request(writer, request);
    }
    encode_report(writer, &decision.report);
}

fn decode_decision(reader: &mut ByteReader<'_>) -> Result<DecisionRecord, DecodeError> {
    let epoch = reader.u64()?;
    let config = decode_config(reader)?;
    let availability = reader.f64()?;
    let requests_len = reader.usize()?;
    let mut requests = Vec::with_capacity(requests_len.min(1 << 16));
    for _ in 0..requests_len {
        requests.push(decode_request(reader)?);
    }
    let report = decode_report(reader)?;
    Ok(DecisionRecord {
        epoch,
        config,
        availability,
        requests,
        report,
    })
}

/// The strategy payload codec, shared with the checkpoint file format so
/// both spell a `Strategy` identically on disk.
pub(crate) mod strategy_codec {
    use super::*;

    pub(crate) fn encode(writer: &mut ByteWriter, strategy: &Strategy) {
        encode_strategy(writer, strategy);
    }

    pub(crate) fn decode(reader: &mut ByteReader<'_>) -> Result<Strategy, DecodeError> {
        decode_strategy(reader)
    }
}

fn invalid_tag(reader: &ByteReader<'_>) -> DecodeError {
    DecodeError {
        at: reader.position().saturating_sub(1),
        what: "invalid enum tag",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stratrec_core::availability::AvailabilityPdf;
    use stratrec_core::catalog::{RebuildPolicy, StrategyCatalog};
    use stratrec_core::modeling::ModelLibrary;
    use stratrec_core::stratrec::StratRec;

    fn sample_strategy(id: u64) -> Strategy {
        Strategy::new(
            id,
            Structure::Simultaneous,
            Organization::Collaborative,
            Style::Hybrid,
            DeploymentParameters::clamped(0.82, 0.31, 0.4),
        )
    }

    #[test]
    fn mutation_records_round_trip() {
        let records = vec![
            WalRecord::Insert {
                slot: 4,
                strategy: sample_strategy(77),
                epoch_after: 12,
            },
            WalRecord::Retire {
                slot: 2,
                epoch_after: 13,
            },
            WalRecord::Compact {
                source_epoch: 13,
                target_epoch: 14,
                live_len: 3,
                forward: vec![Some(0), None, Some(1), None, Some(2)],
            },
        ];
        for record in records {
            let payload = record.encode();
            assert_eq!(WalRecord::decode(&payload).unwrap(), record);
        }
    }

    #[test]
    fn journaled_mutations_convert_and_replay_shapes_agree() {
        let mut catalog = StrategyCatalog::with_policy(
            stratrec_core::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(2),
        );
        catalog.enable_journal();
        catalog.insert(sample_strategy(50));
        catalog.retire(0);
        catalog.compact();
        let records: Vec<WalRecord> = catalog
            .take_journal()
            .iter()
            .map(WalRecord::from_mutation)
            .collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].epoch_after(), Some(1));
        assert_eq!(records[1].epoch_after(), Some(2));
        assert_eq!(records[2].epoch_after(), Some(3));
        for record in &records {
            let payload = record.encode();
            assert_eq!(&WalRecord::decode(&payload).unwrap(), record);
        }
    }

    /// A real end-to-end report (satisfied + ADPaR alternatives) round-trips
    /// byte-identically: decode(encode(x)) == x AND encode(decode(bytes)) ==
    /// bytes — the exactness provenance reenactment leans on.
    #[test]
    fn decision_records_round_trip_byte_identically() {
        let strategies = stratrec_core::examples_data::running_example_strategies();
        let requests = stratrec_core::examples_data::running_example_requests();
        let catalog = StrategyCatalog::with_policy(strategies, RebuildPolicy::threshold(4));
        let models = ModelLibrary::uniform_for(
            catalog.strategies(),
            stratrec_core::modeling::StrategyModel::uniform(0.1, 0.85),
        );
        let availability = AvailabilityPdf::certain(0.8);
        let layer = StratRec::new(StratRecConfig::default());
        let report = layer
            .process_batch_with_catalog(&requests, &catalog, &models, &availability)
            .unwrap();
        assert!(
            !report.alternatives.is_empty(),
            "the running example exercises the ADPaR branch"
        );

        let decision = DecisionRecord {
            epoch: 0,
            config: StratRecConfig::default(),
            availability: availability.expectation().value(),
            requests,
            report,
        };
        let record = WalRecord::Decision(decision);
        let payload = record.encode();
        let decoded = WalRecord::decode(&payload).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.encode(), payload, "re-encoding is byte-identical");
    }

    /// The streaming tier's shed errors must survive the WAL error codec:
    /// a provenance log written during an overload window still reenacts.
    #[test]
    fn serving_shed_errors_round_trip_through_the_error_codec() {
        let errors = [
            StratRecError::AdmissionRejected {
                queue_depth: 96,
                capacity: 64,
            },
            StratRecError::DeadlineExceeded {
                remaining_ms: 4,
                estimated_ms: 12,
            },
        ];
        for error in errors {
            let mut writer = ByteWriter::new();
            encode_error(&mut writer, &error);
            let bytes = writer.into_bytes();
            let mut reader = ByteReader::new(&bytes);
            assert_eq!(decode_error(&mut reader).unwrap(), error);
        }
    }

    #[test]
    fn corrupt_payloads_decode_to_typed_failures() {
        let payload = WalRecord::Retire {
            slot: 1,
            epoch_after: 9,
        }
        .encode();
        assert_eq!(
            WalRecord::decode(&payload[..payload.len() - 1])
                .unwrap_err()
                .what,
            "payload truncated"
        );
        let mut unknown = payload.clone();
        unknown[0] = 250;
        assert_eq!(
            WalRecord::decode(&unknown).unwrap_err().what,
            "unknown record tag"
        );
        let mut trailing = payload;
        trailing.push(0);
        assert_eq!(
            WalRecord::decode(&trailing).unwrap_err().what,
            "trailing bytes after payload"
        );
    }
}
