//! The append-only write-ahead log file: framing, appending, scanning.
//!
//! Layout: an 8-byte header magic (`"SRWAL01\n"`) followed by zero or more
//! frames, each `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`.
//! Appends go through [`WalWriter::append`] (buffered write + flush;
//! [`WalWriter::sync`] forces the bytes to stable storage when the caller's
//! durability contract demands it). The file is **never rewritten**: the
//! log is the system's provenance record, so compaction happens in the
//! checkpoint files ([`crate::checkpoint`]), not here.
//!
//! [`scan`] reads a log back tolerantly: it decodes frames until the first
//! invalid one — torn (truncated mid-frame, the classic crash artifact),
//! checksum-mismatched (bit rot or a torn payload), or undecodable — and
//! reports that frame's **absolute byte offset** in a typed
//! [`StratRecError::WalCorrupt`], together with the prefix of records that
//! *are* valid. Crash recovery applies the prefix and truncates the tail;
//! nothing panics on a corrupt log.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use stratrec_core::error::StratRecError;

use crate::crc::crc32;
use crate::record::WalRecord;
use crate::{DurableError, Result};

/// The WAL header magic: file format + version in 8 bytes.
pub const WAL_MAGIC: &[u8; 8] = b"SRWAL01\n";

/// Bytes of the fixed file header (the magic).
pub const WAL_HEADER_LEN: u64 = 8;

/// Bytes of a frame header (`payload_len` + `crc`).
const FRAME_HEADER_LEN: u64 = 8;

/// Frames whose declared payload exceeds this are rejected as corrupt even
/// if the file happens to be long enough — a bit-flipped length field must
/// not trigger a gigabyte allocation.
const MAX_PAYLOAD_LEN: u32 = 1 << 26; // 64 MiB

/// The file name of the log inside a durable-catalog directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// Appends framed records to a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    len: u64,
}

impl WalWriter {
    /// Creates a fresh log at `path` (truncating any previous file) and
    /// writes the header.
    pub fn create(path: &Path) -> Result<Self> {
        let file = File::create(path)
            .map_err(|e| DurableError::io(format!("create {}", path.display()), e))?;
        let mut writer = Self {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            len: 0,
        };
        writer.write_all(WAL_MAGIC)?;
        writer.flush()?;
        Ok(writer)
    }

    /// Re-opens an existing log for appending after crash recovery,
    /// truncating it to `valid_len` first — the corrupt tail (if any) is
    /// discarded so new appends extend the valid prefix.
    pub fn open_truncated(path: &Path, valid_len: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| DurableError::io(format!("open {}", path.display()), e))?;
        file.set_len(valid_len)
            .map_err(|e| DurableError::io(format!("truncate {}", path.display()), e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| DurableError::io(format!("seek {}", path.display()), e))?;
        Ok(Self {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            len: valid_len,
        })
    }

    /// Appends one framed record and flushes it to the operating system,
    /// returning the byte offset the frame starts at. Call [`Self::sync`]
    /// afterwards to force it to stable storage.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let offset = self.len;
        let payload = record.encode();
        debug_assert!(payload.len() <= MAX_PAYLOAD_LEN as usize);
        let len = u32::try_from(payload.len()).expect("payloads are far below u32::MAX");
        self.write_all(&len.to_le_bytes())?;
        self.write_all(&crc32(&payload).to_le_bytes())?;
        self.write_all(&payload)?;
        self.flush()?;
        Ok(offset)
    }

    /// Forces everything appended so far to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| DurableError::io(format!("sync {}", self.path.display()), e))
    }

    /// Bytes written so far (header + frames).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no frames yet (header only or empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<()> {
        self.file
            .write_all(bytes)
            .map_err(|e| DurableError::io(format!("append to {}", self.path.display()), e))?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| DurableError::io(format!("flush {}", self.path.display()), e))
    }
}

/// The result of scanning a log: the valid record prefix, how far it
/// extends, and what (if anything) stopped the scan.
#[derive(Debug)]
pub struct WalScan {
    /// The decoded records of the valid prefix, each with the absolute byte
    /// offset its frame starts at.
    pub records: Vec<(u64, WalRecord)>,
    /// Length in bytes of the valid prefix (header included). Re-opening
    /// the log for appending truncates to this.
    pub valid_len: u64,
    /// The typed corruption that ended the scan, or `None` when the whole
    /// file is valid. The offset inside names the first bad byte frame.
    pub corruption: Option<StratRecError>,
}

/// Scans the log at `path`, decoding frames until the first invalid one.
/// I/O failures (the file cannot be read at all) are errors; *corruption*
/// is not — it is reported in [`WalScan::corruption`] with the valid prefix
/// intact.
pub fn scan(path: &Path) -> Result<WalScan> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut file| file.read_to_end(&mut bytes))
        .map_err(|e| DurableError::io(format!("read {}", path.display()), e))?;
    Ok(scan_bytes(&bytes))
}

/// [`scan`] over an in-memory image of the log (the fault-injection tests
/// cut prefixes of this).
#[must_use]
pub fn scan_bytes(bytes: &[u8]) -> WalScan {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        let kind = if bytes.len() < WAL_MAGIC.len() {
            "torn header"
        } else {
            "bad magic"
        };
        return WalScan {
            records: Vec::new(),
            valid_len: 0,
            corruption: Some(StratRecError::WalCorrupt {
                offset: 0,
                kind: kind.into(),
            }),
        };
    }
    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    let total = bytes.len() as u64;
    loop {
        if offset == total {
            return WalScan {
                records,
                valid_len: offset,
                corruption: None,
            };
        }
        let corrupt = |kind: &str| {
            Some(StratRecError::WalCorrupt {
                offset,
                kind: kind.into(),
            })
        };
        if total - offset < FRAME_HEADER_LEN {
            return WalScan {
                records,
                valid_len: offset,
                corruption: corrupt("torn record (frame header cut short)"),
            };
        }
        let at = offset as usize;
        let payload_len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let expected_crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if payload_len > MAX_PAYLOAD_LEN {
            return WalScan {
                records,
                valid_len: offset,
                corruption: corrupt("implausible payload length"),
            };
        }
        if total - offset - FRAME_HEADER_LEN < u64::from(payload_len) {
            return WalScan {
                records,
                valid_len: offset,
                corruption: corrupt("torn record (payload cut short)"),
            };
        }
        let payload = &bytes[at + 8..at + 8 + payload_len as usize];
        if crc32(payload) != expected_crc {
            return WalScan {
                records,
                valid_len: offset,
                corruption: corrupt("checksum mismatch"),
            };
        }
        match WalRecord::decode(payload) {
            Ok(record) => records.push((offset, record)),
            Err(_) => {
                return WalScan {
                    records,
                    valid_len: offset,
                    corruption: corrupt("undecodable payload"),
                };
            }
        }
        offset += FRAME_HEADER_LEN + u64::from(payload_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn retire(slot: usize, epoch_after: u64) -> WalRecord {
        WalRecord::Retire { slot, epoch_after }
    }

    fn write_log(path: &Path, records: &[WalRecord]) -> Vec<u64> {
        let mut writer = WalWriter::create(path).unwrap();
        records
            .iter()
            .map(|record| writer.append(record).unwrap())
            .collect()
    }

    #[test]
    fn appended_records_scan_back_in_order_with_offsets() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join(WAL_FILE_NAME);
        let records = vec![retire(0, 1), retire(1, 2), retire(2, 3)];
        let offsets = write_log(&path, &records);
        assert_eq!(offsets[0], WAL_HEADER_LEN);

        let scan = scan(&path).unwrap();
        assert!(scan.corruption.is_none());
        assert_eq!(
            scan.records,
            offsets.into_iter().zip(records).collect::<Vec<_>>()
        );
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn every_torn_prefix_keeps_the_valid_records_before_the_cut() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join(WAL_FILE_NAME);
        let records = vec![retire(0, 1), retire(1, 2)];
        let offsets = write_log(&path, &records);
        let bytes = std::fs::read(&path).unwrap();

        // Frame boundaries: header end plus the end of every frame. A cut
        // exactly on a boundary loses no partial frame, so it scans clean.
        let mut boundaries = vec![WAL_HEADER_LEN];
        boundaries.extend(offsets.iter().map(|&o| scan_frame_end(&bytes, o)));

        for cut in 0..=bytes.len() {
            let scan = scan_bytes(&bytes[..cut]);
            let expected_full = offsets
                .iter()
                .filter(|&&o| scan_frame_end(&bytes, o) <= cut as u64)
                .count();
            assert_eq!(scan.records.len(), expected_full, "cut at {cut}");
            assert_eq!(
                scan.corruption.is_none(),
                boundaries.contains(&(cut as u64)),
                "cut at {cut}: only boundary cuts scan clean"
            );
            // The valid prefix never reaches past the cut.
            assert!(scan.valid_len <= cut as u64);
        }
    }

    fn scan_frame_end(bytes: &[u8], offset: u64) -> u64 {
        let at = offset as usize;
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        offset + FRAME_HEADER_LEN + u64::from(len)
    }

    #[test]
    fn bit_flips_are_checksum_mismatches_at_the_right_offset() {
        let dir = TempDir::new("wal-bitflip");
        let path = dir.path().join(WAL_FILE_NAME);
        let offsets = write_log(&path, &[retire(0, 1), retire(1, 2)]);
        let bytes = std::fs::read(&path).unwrap();

        // Flip one payload byte of the second record.
        let mut flipped = bytes.clone();
        let target = (offsets[1] + FRAME_HEADER_LEN) as usize;
        flipped[target] ^= 0x10;
        let scan = scan_bytes(&flipped);
        assert_eq!(scan.records.len(), 1, "the first record survives");
        assert_eq!(scan.valid_len, offsets[1]);
        match scan.corruption {
            Some(StratRecError::WalCorrupt { offset, ref kind }) => {
                assert_eq!(offset, offsets[1]);
                assert_eq!(kind, "checksum mismatch");
            }
            ref other => panic!("expected WalCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_or_torn_headers_invalidate_the_whole_file() {
        let scan = scan_bytes(b"SRW");
        assert_eq!(scan.valid_len, 0);
        assert!(matches!(
            scan.corruption,
            Some(StratRecError::WalCorrupt { offset: 0, ref kind }) if kind == "torn header"
        ));
        let scan = scan_bytes(b"NOTALOG!rest");
        assert!(matches!(
            scan.corruption,
            Some(StratRecError::WalCorrupt { offset: 0, ref kind }) if kind == "bad magic"
        ));
    }

    #[test]
    fn implausible_lengths_do_not_allocate() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0_u32.to_le_bytes());
        let scan = scan_bytes(&bytes);
        assert!(matches!(
            scan.corruption,
            Some(StratRecError::WalCorrupt { offset: 8, ref kind }) if kind == "implausible payload length"
        ));
    }

    #[test]
    fn open_truncated_discards_the_corrupt_tail_and_appends_cleanly() {
        let dir = TempDir::new("wal-reopen");
        let path = dir.path().join(WAL_FILE_NAME);
        write_log(&path, &[retire(0, 1), retire(1, 2)]);
        // Corrupt the tail by chopping mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let first = scan(&path).unwrap();
        assert_eq!(first.records.len(), 1);
        let mut writer = WalWriter::open_truncated(&path, first.valid_len).unwrap();
        writer.append(&retire(5, 2)).unwrap();
        drop(writer);

        let rescan = scan(&path).unwrap();
        assert!(rescan.corruption.is_none());
        assert_eq!(rescan.records.len(), 2);
        assert_eq!(rescan.records[1].1, retire(5, 2));
    }
}
