//! Periodic compacted checkpoints: bounding recovery cost by churn.
//!
//! Replaying the whole WAL makes recovery cost grow with *total history*. A
//! checkpoint pins the full catalog state (slot-ordered strategies and
//! liveness, the epoch, and the WAL offset replay should resume from) in
//! its own file, so recovery costs one checkpoint load plus the churn since
//! it — [`CheckpointPolicy`] picks the cadence. Checkpoint files are
//! written to a temporary name and atomically renamed into place, so a
//! crash mid-checkpoint leaves either the old set or the old set plus a
//! complete new file, never a half-written one that recovery could trust.
//! Corrupt or torn checkpoints are detected by the same CRC framing as the
//! log and recovery simply falls back to the next-older one (the genesis
//! checkpoint written at [`crate::DurableCatalog::create`] time is the
//! floor, making "replay the whole log" the worst case, not a special
//! case).

use std::path::{Path, PathBuf};

use stratrec_core::error::StratRecError;
use stratrec_core::model::Strategy;

use crate::codec::{ByteReader, ByteWriter};
use crate::crc::crc32;
use crate::record::strategy_codec;
use crate::{DurableError, Result};

/// Checkpoint file magic: format + version in 8 bytes.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"SRCKPT1\n";

/// When the durable tier writes checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Never checkpoint beyond the genesis one — recovery always replays
    /// the full log. The fault-injection tests use this: it makes recovered
    /// state a pure function of the log prefix.
    Never,
    /// Checkpoint after every `n` logged mutations (`n ≥ 1`).
    EveryMutations(u64),
}

impl CheckpointPolicy {
    /// Whether `mutations_since_last` crossed this policy's cadence.
    #[must_use]
    pub fn due(self, mutations_since_last: u64) -> bool {
        match self {
            Self::Never => false,
            Self::EveryMutations(n) => mutations_since_last >= n.max(1),
        }
    }
}

/// A full catalog state pinned at one epoch, plus the WAL offset replay
/// resumes from.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Catalog epoch the state belongs to.
    pub epoch: u64,
    /// Byte offset into the WAL of the first record *not* reflected in this
    /// checkpoint.
    pub wal_offset: u64,
    /// Slot-ordered `(strategy, live)` pairs — everything
    /// [`StrategyCatalog::from_checkpoint_parts`](stratrec_core::catalog::StrategyCatalog::from_checkpoint_parts)
    /// needs to rebuild the content-determined read state.
    pub slots: Vec<(Strategy, bool)>,
}

impl Checkpoint {
    /// Captures `catalog` at its current epoch, with replay resuming at
    /// `wal_offset`.
    #[must_use]
    pub fn capture(catalog: &stratrec_core::catalog::StrategyCatalog, wal_offset: u64) -> Self {
        let slots = catalog
            .strategies()
            .iter()
            .enumerate()
            .map(|(slot, strategy)| (strategy.clone(), catalog.is_live(slot)))
            .collect();
        Self {
            epoch: catalog.epoch(),
            wal_offset,
            slots,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut writer = ByteWriter::new();
        writer.u64(self.epoch);
        writer.u64(self.wal_offset);
        writer.usize(self.slots.len());
        for (strategy, live) in &self.slots {
            strategy_codec::encode(&mut writer, strategy);
            writer.bool(*live);
        }
        writer.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Self, StratRecError> {
        let mut reader = ByteReader::new(payload);
        let decode = |reader: &mut ByteReader<'_>| -> Result<Self, crate::codec::DecodeError> {
            let epoch = reader.u64()?;
            let wal_offset = reader.u64()?;
            let len = reader.usize()?;
            let mut slots = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let strategy = strategy_codec::decode(reader)?;
                let live = reader.bool()?;
                slots.push((strategy, live));
            }
            reader.finish()?;
            Ok(Self {
                epoch,
                wal_offset,
                slots,
            })
        };
        decode(&mut reader).map_err(|error| StratRecError::WalCorrupt {
            offset: CHECKPOINT_FRAME_HEADER + error.at as u64,
            kind: format!("checkpoint {error}"),
        })
    }
}

/// Magic + payload length + CRC precede the payload.
const CHECKPOINT_FRAME_HEADER: u64 = 8 + 4 + 4;

/// The file name of the checkpoint at `epoch` (zero-padded so the
/// lexicographic order is the numeric order).
#[must_use]
pub fn checkpoint_file_name(epoch: u64) -> String {
    format!("checkpoint-{epoch:020}.ckpt")
}

/// Writes `checkpoint` into `dir` atomically (tmp + rename) and syncs it.
pub fn write_checkpoint(dir: &Path, checkpoint: &Checkpoint) -> Result<PathBuf> {
    let payload = checkpoint.encode();
    let mut bytes = CHECKPOINT_MAGIC.to_vec();
    let len = u32::try_from(payload.len()).expect("checkpoints are far below u32::MAX");
    bytes.extend_from_slice(&len.to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let final_path = dir.join(checkpoint_file_name(checkpoint.epoch));
    let tmp_path = final_path.with_extension("ckpt.tmp");
    let io = |context: &str, e| DurableError::io(format!("{context} {}", tmp_path.display()), e);
    {
        let mut file = std::fs::File::create(&tmp_path).map_err(|e| io("create", e))?;
        use std::io::Write as _;
        file.write_all(&bytes).map_err(|e| io("write", e))?;
        file.sync_data().map_err(|e| io("sync", e))?;
    }
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| DurableError::io(format!("rename into {}", final_path.display()), e))?;
    Ok(final_path)
}

/// Reads one checkpoint file, validating magic, framing and checksum.
///
/// # Errors
///
/// [`DurableError::Io`] when the file cannot be read;
/// [`DurableError::Corrupt`] ([`StratRecError::WalCorrupt`] with offsets
/// relative to the checkpoint file) when validation fails.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint> {
    let bytes =
        std::fs::read(path).map_err(|e| DurableError::io(format!("read {}", path.display()), e))?;
    let corrupt = |offset: u64, kind: &str| {
        DurableError::Corrupt(StratRecError::WalCorrupt {
            offset,
            kind: format!("checkpoint {kind}"),
        })
    };
    if bytes.len() < CHECKPOINT_FRAME_HEADER as usize {
        return Err(corrupt(0, "torn header"));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt(0, "bad magic"));
    }
    let payload_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let expected_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let payload_start = CHECKPOINT_FRAME_HEADER as usize;
    if bytes.len() - payload_start != payload_len {
        return Err(corrupt(8, "payload length disagrees with file size"));
    }
    let payload = &bytes[payload_start..];
    if crc32(payload) != expected_crc {
        return Err(corrupt(12, "checksum mismatch"));
    }
    Checkpoint::decode(payload).map_err(DurableError::Corrupt)
}

/// Lists the checkpoint files in `dir`, newest epoch first. Stray
/// `.ckpt.tmp` leftovers from a crash mid-checkpoint are ignored.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<PathBuf>> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| DurableError::io(format!("list {}", dir.display()), e))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.extension().is_some_and(|ext| ext == "ckpt")
                && path
                    .file_name()
                    .and_then(|name| name.to_str())
                    .is_some_and(|name| name.starts_with("checkpoint-"))
        })
        .collect();
    // Zero-padded epochs: lexicographic descending == numeric descending.
    paths.sort();
    paths.reverse();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use stratrec_core::catalog::{RebuildPolicy, StrategyCatalog};

    fn churned_catalog() -> StrategyCatalog {
        let mut catalog = StrategyCatalog::with_policy(
            stratrec_core::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(2),
        );
        catalog.insert(Strategy::from_params(
            9,
            stratrec_core::model::DeploymentParameters::clamped(0.7, 0.4, 0.3),
        ));
        catalog.retire(1);
        catalog
    }

    #[test]
    fn checkpoints_round_trip_and_rebuild_the_same_observable_state() {
        let dir = TempDir::new("ckpt-roundtrip");
        let catalog = churned_catalog();
        let checkpoint = Checkpoint::capture(&catalog, 123);
        let path = write_checkpoint(dir.path(), &checkpoint).unwrap();
        let loaded = read_checkpoint(&path).unwrap();
        assert_eq!(loaded, checkpoint);

        let rebuilt = StrategyCatalog::from_checkpoint_parts(
            loaded.slots,
            loaded.epoch,
            RebuildPolicy::threshold(2),
        );
        assert_eq!(rebuilt.epoch(), catalog.epoch());
        assert_eq!(rebuilt.strategies(), catalog.strategies());
        let loosest = stratrec_core::model::DeploymentParameters::default();
        assert_eq!(
            rebuilt.eligible_for(&loosest),
            catalog.eligible_for(&loosest)
        );
    }

    #[test]
    fn corrupt_checkpoints_fail_typed_not_panicking() {
        let dir = TempDir::new("ckpt-corrupt");
        let checkpoint = Checkpoint::capture(&churned_catalog(), 8);
        let path = write_checkpoint(dir.path(), &checkpoint).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Bit-flip in the payload.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(DurableError::Corrupt(StratRecError::WalCorrupt { ref kind, .. }))
                if kind.contains("checksum")
        ));

        // Truncation.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(DurableError::Corrupt(StratRecError::WalCorrupt { .. }))
        ));
    }

    #[test]
    fn listing_orders_newest_first_and_skips_tmp_leftovers() {
        let dir = TempDir::new("ckpt-list");
        for epoch in [3_u64, 11, 7] {
            let mut checkpoint = Checkpoint::capture(&churned_catalog(), 8);
            checkpoint.epoch = epoch;
            write_checkpoint(dir.path(), &checkpoint).unwrap();
        }
        std::fs::write(dir.path().join("checkpoint-999.ckpt.tmp"), b"junk").unwrap();
        std::fs::write(dir.path().join("wal.log"), b"junk").unwrap();
        let listed = list_checkpoints(dir.path()).unwrap();
        let names: Vec<String> = listed
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                checkpoint_file_name(11),
                checkpoint_file_name(7),
                checkpoint_file_name(3)
            ]
        );
    }

    #[test]
    fn cadence_policy_fires_on_the_threshold() {
        assert!(!CheckpointPolicy::Never.due(1_000_000));
        assert!(!CheckpointPolicy::EveryMutations(16).due(15));
        assert!(CheckpointPolicy::EveryMutations(16).due(16));
        assert!(CheckpointPolicy::EveryMutations(0).due(1), "0 behaves as 1");
    }
}
