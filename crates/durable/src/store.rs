//! [`DurableCatalog`]: the logged publication cell.
//!
//! A thin shell around [`ConcurrentCatalog`] that makes every churn epoch
//! durable before it becomes visible:
//!
//! 1. [`DurableCatalog::update`] runs the caller's mutation closure on the
//!    writer catalog (exactly like [`ConcurrentCatalog::update`]);
//! 2. the epoch's journaled mutations are appended to the WAL and (by
//!    default) synced — **before** the new snapshot is published;
//! 3. only then does the snapshot swap happen, so a reader can never serve
//!    state that would be lost by a crash.
//!
//! If step 2 fails, the update returns the error, the snapshot is not
//! published, and the handle **fail-stops**: the in-memory writer catalog
//! has already applied the mutations and is now ahead of the durable log,
//! so every later mutation is refused with [`DurableError::Poisoned`]
//! rather than silently widening the gap. Readers keep serving the last
//! durable snapshot; the operator recovers by reopening the directory
//! ([`DurableCatalog::recover`]).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use stratrec_core::catalog::{
    CatalogStats, ConcurrentCatalog, EpochSnapshot, RebuildPolicy, SnapshotReader, StrategyCatalog,
};

use crate::checkpoint::{write_checkpoint, Checkpoint, CheckpointPolicy};
use crate::record::{DecisionRecord, WalRecord};
use crate::recovery::{recover_catalog, RecoveryReport};
use crate::wal::{WalWriter, WAL_FILE_NAME};
use crate::{DurableError, Result};

/// Tuning of the durable tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Force every logged epoch to stable storage (`fdatasync`) before
    /// publishing. `true` is the durability contract; tests that model
    /// crash-by-prefix-cut (which never involves the OS page cache) turn it
    /// off for speed.
    pub sync: bool,
    /// When to write compacted checkpoints.
    pub checkpoint: CheckpointPolicy,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            sync: true,
            checkpoint: CheckpointPolicy::EveryMutations(256),
        }
    }
}

/// Writer-side durable state, serialized by one mutex (lock order: the
/// inner catalog's writer lock is always taken first, by `update_logged`).
#[derive(Debug)]
struct LogState {
    wal: WalWriter,
    options: DurableOptions,
    mutations_since_checkpoint: u64,
}

/// What [`DurableCatalog::recover`] returns: the reopened handle, the
/// recovery diagnostics, and every logged decision in the valid prefix.
pub type Recovered = (DurableCatalog, RecoveryReport, Vec<(u64, DecisionRecord)>);

/// A [`ConcurrentCatalog`] whose every mutation is write-ahead logged, with
/// crash recovery and decision provenance. Cloning shares the cell and the
/// log.
#[derive(Debug, Clone)]
pub struct DurableCatalog {
    inner: ConcurrentCatalog,
    dir: PathBuf,
    state: Arc<Mutex<LogState>>,
    poisoned: Arc<AtomicBool>,
}

impl DurableCatalog {
    /// Creates a fresh durable directory at `dir` (which must exist and be
    /// empty of durable files): writes the WAL header and the **genesis
    /// checkpoint** capturing `catalog` as-is, so replay-from-scratch is
    /// just "genesis + whole log".
    pub fn create(dir: &Path, catalog: StrategyCatalog, options: DurableOptions) -> Result<Self> {
        let mut wal = WalWriter::create(&dir.join(WAL_FILE_NAME))?;
        if options.sync {
            wal.sync()?;
        }
        write_checkpoint(dir, &Checkpoint::capture(&catalog, wal.len()))?;
        Ok(Self {
            inner: ConcurrentCatalog::new(catalog),
            dir: dir.to_path_buf(),
            state: Arc::new(Mutex::new(LogState {
                wal,
                options,
                mutations_since_checkpoint: 0,
            })),
            poisoned: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Re-opens a durable directory after a crash: recovers the last valid
    /// prefix (see [`crate::recovery`]), truncates the corrupt tail off the
    /// log so appends extend the valid prefix, and returns the handle plus
    /// the recovery diagnostics (including the typed corruption, if the log
    /// had any).
    pub fn recover(
        dir: &Path,
        policy: RebuildPolicy,
        options: DurableOptions,
    ) -> Result<Recovered> {
        let recovered = recover_catalog(dir, policy)?;
        let wal = WalWriter::open_truncated(&dir.join(WAL_FILE_NAME), recovered.report.valid_len)?;
        let handle = Self {
            inner: ConcurrentCatalog::new(recovered.catalog),
            dir: dir.to_path_buf(),
            state: Arc::new(Mutex::new(LogState {
                wal,
                options,
                mutations_since_checkpoint: 0,
            })),
            poisoned: Arc::new(AtomicBool::new(false)),
        };
        Ok((handle, recovered.report, recovered.decisions))
    }

    /// One durable churn epoch: `f` mutates the writer catalog, the epoch's
    /// mutations are logged (and synced, per [`DurableOptions::sync`])
    /// before the snapshot publishes. Read-only closures log nothing.
    ///
    /// # Errors
    ///
    /// [`DurableError::Poisoned`] after an earlier logging failure; the
    /// logging failure itself on this epoch (in which case nothing was
    /// published and the handle fail-stops).
    pub fn update<R>(
        &self,
        f: impl FnOnce(&mut StrategyCatalog) -> R,
    ) -> Result<(R, Arc<EpochSnapshot>)> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(DurableError::Poisoned);
        }
        let result = self.inner.update_logged(f, |catalog, mutations| {
            let mut state = self.lock_state();
            for mutation in mutations {
                state.wal.append(&WalRecord::from_mutation(mutation))?;
            }
            if state.options.sync {
                state.wal.sync()?;
            }
            state.mutations_since_checkpoint += mutations.len() as u64;
            if state
                .options
                .checkpoint
                .due(state.mutations_since_checkpoint)
            {
                let wal_offset = state.wal.len();
                write_checkpoint(&self.dir, &Checkpoint::capture(catalog, wal_offset))?;
                state.mutations_since_checkpoint = 0;
            }
            Ok(())
        });
        if result.is_err() {
            // The writer catalog is now ahead of the durable log: refuse
            // every further mutation instead of widening the gap.
            self.poisoned.store(true, Ordering::Release);
        }
        result
    }

    /// Appends a deployment decision to the log — the provenance row for a
    /// batch served from the snapshot at `decision.epoch`. Returns the byte
    /// offset of the record's frame.
    ///
    /// # Errors
    ///
    /// [`DurableError::Poisoned`] after an earlier logging failure, or the
    /// append/sync failure itself (which also poisons the handle).
    pub fn log_decision(&self, decision: &DecisionRecord) -> Result<u64> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(DurableError::Poisoned);
        }
        let mut state = self.lock_state();
        let appended = state
            .wal
            .append(&WalRecord::Decision(decision.clone()))
            .and_then(|offset| {
                if state.options.sync {
                    state.wal.sync()?;
                }
                Ok(offset)
            });
        if appended.is_err() {
            self.poisoned.store(true, Ordering::Release);
        }
        appended
    }

    /// The underlying lock-free publication cell (for spawning readers on
    /// other threads, pinning snapshots, etc. — reads need no durability
    /// shim).
    #[must_use]
    pub fn catalog(&self) -> &ConcurrentCatalog {
        &self.inner
    }

    /// Pins the currently published (and durable) snapshot.
    #[must_use]
    pub fn pin(&self) -> Arc<EpochSnapshot> {
        self.inner.pin()
    }

    /// Registers a migrating reader on the inner cell.
    #[must_use]
    pub fn reader(&self) -> SnapshotReader {
        self.inner.reader()
    }

    /// The published epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// Health counters of the inner cell.
    #[must_use]
    pub fn stats(&self) -> CatalogStats {
        self.inner.stats()
    }

    /// Bytes in the WAL so far.
    pub fn wal_len(&self) -> Result<u64> {
        Ok(self.lock_state().wal.len())
    }

    /// Whether an earlier logging failure fail-stopped this handle.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    fn lock_state(&self) -> MutexGuard<'_, LogState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::wal;
    use stratrec_core::model::{DeploymentParameters, Strategy};

    fn options() -> DurableOptions {
        DurableOptions {
            sync: false,
            checkpoint: CheckpointPolicy::Never,
        }
    }

    fn strategy(id: u64) -> Strategy {
        Strategy::from_params(id, DeploymentParameters::clamped(0.8, 0.3, 0.3))
    }

    fn seeded(dir: &Path, options: DurableOptions) -> DurableCatalog {
        let catalog = StrategyCatalog::with_policy(
            stratrec_core::examples_data::running_example_strategies(),
            RebuildPolicy::threshold(3),
        );
        DurableCatalog::create(dir, catalog, options).unwrap()
    }

    #[test]
    fn every_update_logs_its_mutations_before_publishing() {
        let dir = TempDir::new("store-log");
        let durable = seeded(dir.path(), options());
        let ((), snapshot) = durable
            .update(|catalog| {
                catalog.insert(strategy(10));
                catalog.retire(0);
            })
            .unwrap();
        assert_eq!(snapshot.epoch(), 2);

        let scan = wal::scan(&dir.path().join(WAL_FILE_NAME)).unwrap();
        assert!(scan.corruption.is_none());
        assert_eq!(scan.records.len(), 2);
        assert!(matches!(
            scan.records[0].1,
            WalRecord::Insert {
                slot: 4,
                epoch_after: 1,
                ..
            }
        ));
        assert!(matches!(
            scan.records[1].1,
            WalRecord::Retire {
                slot: 0,
                epoch_after: 2
            }
        ));
    }

    #[test]
    fn checkpoints_appear_on_the_configured_cadence() {
        let dir = TempDir::new("store-ckpt");
        let durable = seeded(
            dir.path(),
            DurableOptions {
                sync: false,
                checkpoint: CheckpointPolicy::EveryMutations(3),
            },
        );
        for round in 0..7_u64 {
            durable
                .update(|catalog| {
                    catalog.insert(strategy(100 + round));
                })
                .unwrap();
        }
        let checkpoints = crate::checkpoint::list_checkpoints(dir.path()).unwrap();
        // Genesis (epoch 0) + cadence checkpoints at epochs 3 and 6.
        let epochs: Vec<u64> = checkpoints
            .iter()
            .map(|path| crate::checkpoint::read_checkpoint(path).unwrap().epoch)
            .collect();
        assert_eq!(epochs, vec![6, 3, 0]);
    }

    #[test]
    fn a_poisoned_handle_refuses_mutations_but_keeps_serving() {
        let dir = TempDir::new("store-poison");
        let durable = seeded(dir.path(), options());
        durable
            .update(|catalog| {
                catalog.insert(strategy(10));
            })
            .unwrap();
        let published = durable.pin();

        // Force an append failure: replace the WAL with a directory so the
        // reopened-on-append path cannot write. Simpler: poison directly by
        // removing the file and making the *sync* path fail is platform
        // dependent — instead, exercise the flag through its public
        // contract.
        durable.poisoned.store(true, Ordering::Release);
        assert!(matches!(
            durable.update(|catalog| catalog.insert(strategy(11))),
            Err(DurableError::Poisoned)
        ));
        assert!(durable.is_poisoned());
        // Reads still serve the last durable snapshot.
        assert_eq!(durable.pin().epoch(), published.epoch());
    }

    #[test]
    fn recover_reopens_the_log_for_appending() {
        let dir = TempDir::new("store-reopen");
        let durable = seeded(dir.path(), options());
        durable
            .update(|catalog| {
                catalog.insert(strategy(10));
            })
            .unwrap();
        drop(durable);

        let (recovered, report, decisions) =
            DurableCatalog::recover(dir.path(), RebuildPolicy::threshold(3), options()).unwrap();
        assert!(report.corruption.is_none());
        assert!(decisions.is_empty());
        assert_eq!(recovered.epoch(), 1);
        recovered
            .update(|catalog| {
                catalog.insert(strategy(11));
            })
            .unwrap();
        drop(recovered);

        let (again, report, _) =
            DurableCatalog::recover(dir.path(), RebuildPolicy::threshold(3), options()).unwrap();
        assert!(report.corruption.is_none());
        assert_eq!(report.records_applied, 2, "both epochs replay");
        assert_eq!(again.epoch(), 2);
    }
}
