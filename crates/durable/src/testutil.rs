//! Test scaffolding: a self-cleaning temporary directory.
//!
//! The offline build has no `tempfile` crate, so the fault-injection and
//! recovery tests use this hand-rolled RAII guard: a unique directory under
//! the system temp dir (honoring `TMPDIR` via [`std::env::temp_dir`], which
//! the CI fault-injection job points at a job-local scratch dir), removed
//! recursively on drop. Uniqueness comes from the process id plus a global
//! counter — parallel test threads and parallel CI jobs cannot collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A temporary directory deleted (recursively) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `"$TMPDIR/stratrec-<label>-<pid>-<n>"`.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created — tests cannot proceed
    /// without scratch space, and a typed error would just be unwrapped.
    #[must_use]
    pub fn new(label: &str) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "stratrec-{label}-{pid}-{id}",
            pid = std::process::id()
        ));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|error| panic!("creating temp dir {}: {error}", path.display()));
        Self { path }
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort: a failed cleanup must not turn a passing test into a
        // panic-while-panicking abort.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directories_are_unique_and_removed_on_drop() {
        let first = TempDir::new("unit");
        let second = TempDir::new("unit");
        assert_ne!(first.path(), second.path());
        assert!(first.path().is_dir());
        let kept = first.path().to_path_buf();
        std::fs::write(kept.join("file"), b"x").unwrap();
        drop(first);
        assert!(!kept.exists(), "drop removes the tree");
        assert!(second.path().is_dir(), "other guards are untouched");
    }
}
