//! A minimal little-endian binary codec for the on-disk record payloads.
//!
//! The vendored serde stub has no data format behind it (the derives are
//! decorative), so the durable tier encodes by hand: fixed-width
//! little-endian integers, `f64` as its IEEE-754 bit pattern (`NaN` and
//! `-0.0` round-trip exactly — a requirement for byte-identical provenance
//! reenactment), `usize` widened to `u64` (the format is
//! architecture-independent), and length-prefixed UTF-8 strings. Decoding
//! is bounds- and validity-checked at every step; a failure reports the
//! cursor position so the WAL layer can surface an absolute byte offset.

/// A decode failure: what went wrong and where (byte offset *within the
/// payload being decoded* — the caller adds the payload's position in the
/// file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Cursor position in the payload at the point of failure.
    pub at: usize,
    /// What failed (`"payload truncated"`, `"invalid enum tag"`, ...).
    pub what: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at payload byte {}", self.what, self.at)
    }
}

/// Appends little-endian primitives to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buffer: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buffer
    }

    pub fn u8(&mut self, value: u8) {
        self.buffer.push(value);
    }

    pub fn bool(&mut self, value: bool) {
        self.u8(u8::from(value));
    }

    pub fn u32(&mut self, value: u32) {
        self.buffer.extend_from_slice(&value.to_le_bytes());
    }

    pub fn u64(&mut self, value: u64) {
        self.buffer.extend_from_slice(&value.to_le_bytes());
    }

    /// `usize` is stored widened to `u64` so the format does not depend on
    /// the writing architecture.
    pub fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    /// `f64` is stored as its exact bit pattern: the value read back is
    /// bit-identical, including `NaN` payloads and the sign of zero.
    pub fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, value: &str) {
        self.usize(value.len());
        self.buffer.extend_from_slice(value.as_bytes());
    }
}

/// Reads little-endian primitives off a byte slice, tracking the cursor.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, cursor at the start.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, cursor: 0 }
    }

    /// Current cursor position (bytes consumed so far).
    #[must_use]
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Whether every byte has been consumed — decoders call this last so a
    /// payload with trailing garbage is rejected rather than ignored.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.cursor == self.bytes.len() {
            Ok(())
        } else {
            Err(self.error("trailing bytes after payload"))
        }
    }

    fn error(&self, what: &'static str) -> DecodeError {
        DecodeError {
            at: self.cursor,
            what,
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .cursor
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| self.error("payload truncated"))?;
        let slice = &self.bytes[self.cursor..end];
        self.cursor = end;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => {
                self.cursor -= 1;
                Err(self.error("invalid boolean byte"))
            }
        }
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let wide = self.u64()?;
        usize::try_from(wide).map_err(|_| self.error("usize overflows this platform"))
    }

    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.error("invalid UTF-8 string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut writer = ByteWriter::new();
        writer.u8(7);
        writer.bool(true);
        writer.u32(0xDEAD_BEEF);
        writer.u64(u64::MAX);
        writer.usize(12_345);
        writer.f64(-0.0);
        writer.f64(f64::NAN);
        writer.f64(0.1 + 0.2);
        writer.str("epoch snapshot — κ");
        let bytes = writer.into_bytes();

        let mut reader = ByteReader::new(&bytes);
        assert_eq!(reader.u8().unwrap(), 7);
        assert!(reader.bool().unwrap());
        assert_eq!(reader.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(reader.u64().unwrap(), u64::MAX);
        assert_eq!(reader.usize().unwrap(), 12_345);
        assert_eq!(reader.f64().unwrap().to_bits(), (-0.0_f64).to_bits());
        assert!(reader.f64().unwrap().is_nan());
        assert_eq!(reader.f64().unwrap().to_bits(), (0.1_f64 + 0.2).to_bits());
        assert_eq!(reader.str().unwrap(), "epoch snapshot — κ");
        reader.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_typed_failures_with_positions() {
        let mut writer = ByteWriter::new();
        writer.u64(1);
        let bytes = writer.into_bytes();

        let mut short = ByteReader::new(&bytes[..5]);
        let error = short.u64().unwrap_err();
        assert_eq!(error.what, "payload truncated");
        assert_eq!(error.at, 0);

        let mut trailing = ByteReader::new(&bytes);
        trailing.u32().unwrap();
        assert_eq!(
            trailing.finish().unwrap_err().what,
            "trailing bytes after payload"
        );

        let mut bad_bool = ByteReader::new(&[9]);
        assert_eq!(bad_bool.bool().unwrap_err().what, "invalid boolean byte");
    }
}
