//! Request and response envelopes of the streaming front-end.
//!
//! A [`StreamRequest`] is a deployment request plus the two pieces of
//! context the service tier needs: the **tenant** issuing it (for the
//! multi-tenant fairness machinery) and a **deadline** — the latency budget
//! measured from submission. The matching [`StreamResponse`] carries exactly
//! one typed [`StreamOutcome`]; the server's core invariant is that every
//! submitted request produces exactly one response, whatever happens.

use std::time::Duration;

use stratrec_core::prelude::{
    AlternativeRecommendation, Recommendation, ServiceQuality, StratRecError,
};

use stratrec_core::model::DeploymentRequest;

/// One request submitted to the streaming front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRequest {
    /// Caller-chosen identifier; echoed verbatim in the response. The
    /// server never interprets it beyond the echo, so callers own
    /// uniqueness (the open-loop generator uses the arrival sequence
    /// number).
    pub id: u64,
    /// The tenant issuing the request.
    pub tenant: usize,
    /// Latency budget measured from submission: if the request cannot be
    /// served within this budget it is shed with a typed
    /// [`StratRecError::DeadlineExceeded`] instead of being served late.
    pub deadline: Duration,
    /// The deployment request to plan.
    pub request: DeploymentRequest,
}

/// What the pipeline answered for one served request: either `k` direct
/// strategy recommendations from the Aggregator, or the ADPaR alternative
/// for an unsatisfied request (at the response's [`ServiceQuality`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ServedAnswer {
    /// The request was satisfied: `k` recommended strategies under the
    /// availability budget.
    Recommended(Recommendation),
    /// The request was unsatisfied and went to ADPaR (exact at
    /// [`ServiceQuality::Full`], `Baseline2` at
    /// [`ServiceQuality::Degraded`]).
    Alternative(AlternativeRecommendation),
}

/// The single typed outcome of one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOutcome {
    /// The request was served from the pinned snapshot of `epoch`.
    Served {
        /// Quality level the window was served at. `Degraded` answers are
        /// bit-identical to `Baseline2` over the same snapshot.
        quality: ServiceQuality,
        /// Epoch of the catalog snapshot the answer was planned against.
        epoch: u64,
        /// The per-request answer.
        answer: ServedAnswer,
    },
    /// The request was shed before serving:
    /// [`StratRecError::AdmissionRejected`] (queue at capacity) or
    /// [`StratRecError::DeadlineExceeded`] (budget unmeetable).
    Shed(StratRecError),
    /// The serving pipeline itself failed for the request's window (e.g. a
    /// churned-in strategy without a fitted model). Still a typed response
    /// — the request is not lost — but the answer is an error rather than
    /// a recommendation.
    Failed(StratRecError),
}

impl StreamOutcome {
    /// Whether the outcome is a served answer (at either quality).
    #[must_use]
    pub fn is_served(&self) -> bool {
        matches!(self, Self::Served { .. })
    }

    /// Whether the outcome is a typed shed.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(self, Self::Shed(_))
    }
}

/// The response delivered for one [`StreamRequest`] — exactly one per
/// submitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResponse {
    /// The request's caller-chosen id, echoed.
    pub id: u64,
    /// The request's tenant, echoed.
    pub tenant: usize,
    /// Sequence number of the admission window that resolved the request
    /// (shed responses carry the window open at shed time).
    pub window: u64,
    /// Submission-to-response latency as observed by the server.
    pub latency: Duration,
    /// The one typed outcome.
    pub outcome: StreamOutcome,
}
