//! The admission window: batching, capacity control and deadline shedding.
//!
//! Requests are grouped into **windows** that close on whichever comes
//! first: the window reaches [`AdmissionConfig::max_batch`] requests, or the
//! oldest queued request has waited [`AdmissionConfig::max_wait`]. Batching
//! amortizes the per-window pipeline cost (matrix sync, delta drain,
//! selection) across requests; the wait bound keeps a lone request from
//! idling in an empty window.
//!
//! Two typed shed decisions guard the window, and both produce responses —
//! never silent drops:
//!
//! * **Capacity**: beyond [`AdmissionConfig::queue_capacity`] pending
//!   requests, [`offer`](AdmissionWindow::offer) refuses with
//!   [`StratRecError::AdmissionRejected`]. Shedding at the door keeps the
//!   backlog — and therefore the worst-case response latency of everything
//!   behind it — bounded.
//! * **Deadline**: when a window closes,
//!   [`take_batch`](AdmissionWindow::take_batch) sheds every request whose
//!   remaining budget is smaller than the current service-time estimate
//!   with [`StratRecError::DeadlineExceeded`] — a request that cannot make
//!   its deadline only wastes the budget of those that still can.
//!
//! The window is pure data plus explicit `now: Instant` parameters, so the
//! close/shed logic is unit-testable on a virtual clock.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use stratrec_core::prelude::StratRecError;

use crate::request::StreamRequest;

/// Sizing and timing of the admission window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// A window closes as soon as it holds this many requests.
    pub max_batch: usize,
    /// A window closes once its oldest request has waited this long
    /// (milliseconds), full or not.
    pub max_wait_ms: u64,
    /// Pending requests beyond this depth are refused with
    /// [`StratRecError::AdmissionRejected`].
    pub queue_capacity: usize,
    /// Seed for the service-time estimate before the first window has been
    /// measured (milliseconds).
    pub initial_estimate_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait_ms: 5,
            queue_capacity: 1_024,
            initial_estimate_ms: 1,
        }
    }
}

impl AdmissionConfig {
    /// [`Self::max_wait_ms`] as a [`Duration`].
    #[must_use]
    pub fn max_wait(&self) -> Duration {
        Duration::from_millis(self.max_wait_ms)
    }

    /// [`Self::initial_estimate_ms`] as a [`Duration`].
    #[must_use]
    pub fn initial_estimate(&self) -> Duration {
        Duration::from_millis(self.initial_estimate_ms)
    }
}

/// One queued request plus its submission instant (stamped by the
/// submitting thread, so queueing delay counts against the deadline).
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// The submitted request.
    pub request: StreamRequest,
    /// When the request entered the queue.
    pub enqueued: Instant,
}

impl QueuedRequest {
    /// The budget left before this request's deadline at `now`.
    #[must_use]
    pub fn remaining(&self, now: Instant) -> Duration {
        self.request
            .deadline
            .saturating_sub(now.saturating_duration_since(self.enqueued))
    }
}

/// The admission queue and its window-close logic.
#[derive(Debug)]
pub struct AdmissionWindow {
    config: AdmissionConfig,
    pending: VecDeque<QueuedRequest>,
}

impl AdmissionWindow {
    /// An empty window under `config`.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            pending: VecDeque::new(),
        }
    }

    /// Number of pending requests — the controller's queue-depth signal.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// Whether no requests are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Offers one request to the queue. Refuses with
    /// [`StratRecError::AdmissionRejected`] when the queue is at capacity —
    /// the caller must turn that into a typed response.
    ///
    /// # Errors
    ///
    /// Returns [`StratRecError::AdmissionRejected`] at capacity.
    pub fn offer(&mut self, item: QueuedRequest) -> Result<(), StratRecError> {
        if self.pending.len() >= self.config.queue_capacity {
            return Err(StratRecError::AdmissionRejected {
                queue_depth: self.pending.len(),
                capacity: self.config.queue_capacity,
            });
        }
        self.pending.push_back(item);
        Ok(())
    }

    /// Whether the current window is closed at `now`: full, or the oldest
    /// request has waited past the wait bound.
    #[must_use]
    pub fn is_closed(&self, now: Instant) -> bool {
        if self.pending.len() >= self.config.max_batch {
            return true;
        }
        self.pending.front().is_some_and(|oldest| {
            now.saturating_duration_since(oldest.enqueued) >= self.config.max_wait()
        })
    }

    /// How long the service loop may block for more arrivals before the
    /// window must close: `None` when it is already closed (or nothing is
    /// pending — then there is no window to close).
    #[must_use]
    pub fn wait_budget(&self, now: Instant) -> Option<Duration> {
        if self.is_closed(now) {
            return None;
        }
        self.pending.front().map(|oldest| {
            self.config
                .max_wait()
                .saturating_sub(now.saturating_duration_since(oldest.enqueued))
        })
    }

    /// Closes the window: pops up to `max_batch` requests in arrival order,
    /// shedding every one whose remaining budget at `now` is below
    /// `estimate` (the current per-window service-time estimate) with a
    /// typed [`StratRecError::DeadlineExceeded`]. Returns the admitted
    /// batch and the shed requests with their errors.
    #[must_use]
    pub fn take_batch(
        &mut self,
        now: Instant,
        estimate: Duration,
    ) -> (Vec<QueuedRequest>, Vec<(QueuedRequest, StratRecError)>) {
        let mut admitted = Vec::new();
        let mut shed = Vec::new();
        while admitted.len() < self.config.max_batch {
            let Some(item) = self.pending.pop_front() else {
                break;
            };
            let remaining = item.remaining(now);
            if remaining < estimate {
                let error = StratRecError::DeadlineExceeded {
                    remaining_ms: u64::try_from(remaining.as_millis()).unwrap_or(u64::MAX),
                    estimated_ms: u64::try_from(estimate.as_millis()).unwrap_or(u64::MAX),
                };
                shed.push((item, error));
            } else {
                admitted.push(item);
            }
        }
        (admitted, shed)
    }

    /// Drains every pending request (shutdown path): the caller decides how
    /// to respond to each.
    #[must_use]
    pub fn drain(&mut self) -> Vec<QueuedRequest> {
        self.pending.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use stratrec_core::model::{DeploymentParameters, DeploymentRequest, TaskType};

    fn queued(id: u64, enqueued: Instant, deadline: Duration) -> QueuedRequest {
        QueuedRequest {
            request: StreamRequest {
                id,
                tenant: 0,
                deadline,
                request: DeploymentRequest::new(
                    id,
                    TaskType::SentenceTranslation,
                    DeploymentParameters::clamped(0.7, 0.8, 0.8),
                ),
            },
            enqueued,
        }
    }

    fn config() -> AdmissionConfig {
        AdmissionConfig {
            max_batch: 3,
            max_wait_ms: 10,
            queue_capacity: 5,
            initial_estimate_ms: 1,
        }
    }

    #[test]
    fn windows_close_on_size_or_wait_whichever_first() {
        let start = Instant::now();
        let mut window = AdmissionWindow::new(config());
        assert!(!window.is_closed(start), "empty windows never close");
        assert_eq!(window.wait_budget(start), None, "nothing to wait for");
        window
            .offer(queued(0, start, Duration::from_millis(100)))
            .unwrap();
        assert!(!window.is_closed(start));
        // The wait budget counts down from the oldest request's arrival.
        let later = start + Duration::from_millis(4);
        assert_eq!(window.wait_budget(later), Some(Duration::from_millis(6)));
        assert!(
            window.is_closed(start + Duration::from_millis(10)),
            "wait bound"
        );
        // Or: the window fills to max_batch and closes immediately.
        window
            .offer(queued(1, start, Duration::from_millis(100)))
            .unwrap();
        window
            .offer(queued(2, start, Duration::from_millis(100)))
            .unwrap();
        assert!(window.is_closed(start), "size bound");
        assert_eq!(window.wait_budget(start), None);
    }

    #[test]
    fn capacity_overflow_is_a_typed_admission_rejection() {
        let start = Instant::now();
        let mut window = AdmissionWindow::new(config());
        for id in 0..5 {
            window
                .offer(queued(id, start, Duration::from_millis(100)))
                .unwrap();
        }
        let refused = window.offer(queued(5, start, Duration::from_millis(100)));
        assert!(matches!(
            refused,
            Err(StratRecError::AdmissionRejected {
                queue_depth: 5,
                capacity: 5,
            })
        ));
        assert_eq!(window.depth(), 5, "the refused request was never queued");
    }

    #[test]
    fn take_batch_sheds_unmeetable_deadlines_typed() {
        let start = Instant::now();
        let mut window = AdmissionWindow::new(config());
        // Request 0 has plenty of budget; request 1 is already past its
        // deadline; request 2 has less budget than the service estimate.
        window
            .offer(queued(0, start, Duration::from_millis(100)))
            .unwrap();
        window
            .offer(queued(1, start, Duration::from_millis(1)))
            .unwrap();
        window
            .offer(queued(2, start, Duration::from_millis(25)))
            .unwrap();
        let now = start + Duration::from_millis(20);
        let (admitted, shed) = window.take_batch(now, Duration::from_millis(10));
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].request.id, 0);
        assert_eq!(shed.len(), 2);
        assert!(matches!(
            shed[0].1,
            StratRecError::DeadlineExceeded {
                remaining_ms: 0,
                estimated_ms: 10,
            }
        ));
        assert!(matches!(
            shed[1].1,
            StratRecError::DeadlineExceeded {
                remaining_ms: 5,
                estimated_ms: 10,
            }
        ));
        assert!(window.is_empty());
    }

    #[test]
    fn take_batch_respects_the_batch_bound_and_arrival_order() {
        let start = Instant::now();
        let mut window = AdmissionWindow::new(config());
        for id in 0..5 {
            window
                .offer(queued(id, start, Duration::from_secs(1)))
                .unwrap();
        }
        let (admitted, shed) = window.take_batch(start, Duration::from_millis(1));
        assert!(shed.is_empty());
        let ids: Vec<u64> = admitted.iter().map(|q| q.request.id).collect();
        assert_eq!(ids, vec![0, 1, 2], "max_batch oldest-first");
        assert_eq!(window.depth(), 2, "the rest stays queued");
        let drained = window.drain();
        assert_eq!(drained.len(), 2);
        assert!(window.is_empty());
    }
}
