//! `stratrec-served` — the streaming daemon and its self-checking soak.
//!
//! The binary wires the full streaming stack together: a churned
//! [`ConcurrentCatalog`], the [`StreamServer`] service thread, and the
//! open-loop arrival generator. It runs in two stages:
//!
//! 1. **Calibrate** — closed-loop flights of `max_batch` requests measure
//!    the sustainable serving throughput on this machine (skipped when
//!    `--rate-hz` pins the offered rate explicitly).
//! 2. **Soak** — an open-loop Poisson stream at `--overload-factor` times
//!    the sustainable rate is replayed against the server for
//!    `--duration-ms`, while a churn writer publishes catalog epochs
//!    concurrently.
//!
//! The soak is self-checking: every arrival must come back as exactly one
//! typed response (served, shed or failed — never silently dropped) and the
//! service thread must not panic. Any violation exits non-zero, which is
//! what the CI overload leg keys on. A JSON summary with tail latencies
//! goes to stdout.
//!
//! ```text
//! stratrec-served [--strategies N] [--churn-epochs N] [--duration-ms MS]
//!                 [--overload-factor F] [--deadline-ms MS] [--seed S]
//!                 [--calibrate-requests N] [--rate-hz HZ]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use stratrec_core::availability::AvailabilityPdf;
use stratrec_core::catalog::{ConcurrentCatalog, RebuildPolicy};
use stratrec_core::model::DeploymentRequest;
use stratrec_serve::{ServeConfig, StreamRequest, StreamResponse, StreamServer};
use stratrec_workload::{ChurnInstance, ChurnScenario, OpenLoopScenario};

struct Args {
    strategies: usize,
    churn_epochs: usize,
    duration_ms: u64,
    overload_factor: f64,
    deadline_ms: u64,
    seed: u64,
    calibrate_requests: u64,
    rate_hz: Option<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            strategies: 400,
            churn_epochs: 8,
            duration_ms: 5_000,
            overload_factor: 2.0,
            deadline_ms: 250,
            seed: 42,
            calibrate_requests: 512,
            rate_hz: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--strategies" => args.strategies = parse(&value(&flag)?)?,
            "--churn-epochs" => args.churn_epochs = parse(&value(&flag)?)?,
            "--duration-ms" => args.duration_ms = parse(&value(&flag)?)?,
            "--overload-factor" => args.overload_factor = parse(&value(&flag)?)?,
            "--deadline-ms" => args.deadline_ms = parse(&value(&flag)?)?,
            "--seed" => args.seed = parse(&value(&flag)?)?,
            "--calibrate-requests" => args.calibrate_requests = parse(&value(&flag)?)?,
            "--rate-hz" => args.rate_hz = Some(parse(&value(&flag)?)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("could not parse value {raw}"))
}

fn instance(args: &Args) -> ChurnInstance {
    ChurnScenario {
        initial_strategies: args.strategies,
        epochs: args.churn_epochs,
        inserts_per_epoch: args.strategies / 20 + 1,
        retires_per_epoch: args.strategies / 25 + 1,
        batch_size: 8,
        seed: args.seed,
        ..ChurnScenario::default()
    }
    .materialize()
}

fn stream_request(
    id: u64,
    deadline: Duration,
    tenant: usize,
    request: DeploymentRequest,
) -> StreamRequest {
    StreamRequest {
        id,
        tenant,
        deadline,
        request,
    }
}

/// Closed-loop throughput measurement: flights of `max_batch` requests with
/// generous deadlines, each flight submitted only after the previous one
/// fully resolved, so the server is busy but never backlogged.
fn calibrate(args: &Args, instance: &ChurnInstance, config: ServeConfig) -> f64 {
    let catalog = Arc::new(ConcurrentCatalog::new(
        instance.catalog(RebuildPolicy::default()),
    ));
    let pdf = AvailabilityPdf::certain(instance.availability.value());
    let handle = StreamServer::new(config).start(catalog, instance.models.clone(), pdf);
    let flight = config.admission.max_batch as u64;
    let deadline = Duration::from_secs(60);
    let started = Instant::now();
    let mut submitted = 0_u64;
    let mut resolved = 0_u64;
    while submitted < args.calibrate_requests {
        for _ in 0..flight.min(args.calibrate_requests - submitted) {
            let template = &instance.standing[(submitted as usize) % instance.standing.len()];
            let request = DeploymentRequest::new(submitted, template.task_type, template.params);
            assert!(
                handle.submit(stream_request(submitted, deadline, 0, request)),
                "calibration server exited early"
            );
            submitted += 1;
        }
        while resolved < submitted {
            if handle.recv_timeout(Duration::from_secs(10)).is_some() {
                resolved += 1;
            } else {
                panic!("calibration response timed out");
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-6);
    let (stats, rest) = handle.shutdown();
    assert_eq!(resolved + rest.len() as u64, stats.responses());
    #[allow(clippy::cast_precision_loss)]
    let hz = resolved as f64 / elapsed;
    hz
}

fn percentile_ms(sorted_nanos: &[u128], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let index = (((sorted_nanos.len() - 1) as f64) * q).round() as usize;
    #[allow(clippy::cast_precision_loss)]
    let ms = sorted_nanos[index] as f64 / 1e6;
    ms
}

fn main() -> std::process::ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("stratrec-served: {message}");
            return std::process::ExitCode::from(2);
        }
    };
    let instance = instance(&args);
    let config = ServeConfig::default();

    let sustainable_hz = match args.rate_hz {
        Some(hz) => hz,
        None => calibrate(&args, &instance, config),
    };
    let offered_hz = (sustainable_hz * args.overload_factor).max(1.0);

    let scenario = OpenLoopScenario {
        base_rate_hz: offered_hz,
        duration_ms: args.duration_ms,
        deadline_ms: args.deadline_ms,
        seed: args.seed,
        ..OpenLoopScenario::default()
    };
    let arrivals = scenario.materialize();

    let catalog = Arc::new(ConcurrentCatalog::new(
        instance.catalog(RebuildPolicy::default()),
    ));
    let pdf = AvailabilityPdf::certain(instance.availability.value());
    let handle =
        StreamServer::new(config).start(Arc::clone(&catalog), instance.models.clone(), pdf);

    let mut responses: Vec<StreamResponse> = Vec::with_capacity(arrivals.len());
    let mut submit_failures = 0_u64;
    std::thread::scope(|scope| {
        // Churn writer: one published epoch every duration/(epochs+1),
        // racing the service thread's delta migration.
        let writer_catalog = &catalog;
        let writer_instance = &instance;
        let epoch_gap =
            Duration::from_millis(args.duration_ms / (args.churn_epochs as u64 + 1).max(1));
        scope.spawn(move || {
            for i in 0..writer_instance.epochs.len() {
                std::thread::sleep(epoch_gap);
                let _ = writer_catalog.update(|catalog| writer_instance.apply_epoch(i, catalog));
            }
        });

        // Open-loop replay: arrivals follow the schedule's clock, never the
        // server's. Oversleeps self-correct because every due arrival is
        // submitted immediately on wake.
        let start = Instant::now();
        for arrival in &arrivals {
            let now = start.elapsed();
            if arrival.at > now {
                std::thread::sleep(arrival.at - now);
            }
            let request = stream_request(
                arrival.id,
                arrival.deadline,
                arrival.tenant,
                arrival.request.clone(),
            );
            if !handle.submit(request) {
                submit_failures += 1;
            }
            responses.extend(handle.drain_responses());
        }
    });

    let (stats, rest) = handle.shutdown();
    responses.extend(rest);

    // Invariant: every arrival resolved to exactly one typed response.
    let mut seen = vec![false; arrivals.len()];
    let mut duplicates = 0_u64;
    for response in &responses {
        let id = response.id as usize;
        if id >= seen.len() || seen[id] {
            duplicates += 1;
        } else {
            seen[id] = true;
        }
    }
    let missing = seen.iter().filter(|&&seen| !seen).count();

    let mut served_nanos: Vec<u128> = responses
        .iter()
        .filter(|r| r.outcome.is_served())
        .map(|r| r.latency.as_nanos())
        .collect();
    served_nanos.sort_unstable();

    println!(
        "{{\n  \"sustainable_hz\": {sustainable_hz:.1},\n  \"offered_hz\": {offered_hz:.1},\n  \
         \"arrivals\": {},\n  \"responses\": {},\n  \"served_full\": {},\n  \
         \"served_degraded\": {},\n  \"shed_deadline\": {},\n  \"shed_admission\": {},\n  \
         \"failed\": {},\n  \"windows\": {},\n  \"degraded_windows\": {},\n  \
         \"peak_queue_depth\": {},\n  \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \
         \"p999_ms\": {:.3}\n}}",
        arrivals.len(),
        responses.len(),
        stats.served_full,
        stats.served_degraded,
        stats.shed_deadline,
        stats.shed_admission,
        stats.failed,
        stats.windows,
        stats.degraded_windows,
        stats.peak_queue_depth,
        percentile_ms(&served_nanos, 0.50),
        percentile_ms(&served_nanos, 0.99),
        percentile_ms(&served_nanos, 0.999),
    );

    if submit_failures > 0 || missing > 0 || duplicates > 0 {
        eprintln!(
            "stratrec-served: invariant violated — {submit_failures} failed submissions, \
             {missing} missing responses, {duplicates} duplicate responses"
        );
        return std::process::ExitCode::from(1);
    }
    eprintln!(
        "stratrec-served: OK — {} arrivals, {} responses, zero lost",
        arrivals.len(),
        responses.len()
    );
    std::process::ExitCode::SUCCESS
}
