//! The streaming service loop: MPSC ingest, windowed serving, typed sheds.
//!
//! [`StreamServer::start`] spawns one **service thread** that owns a
//! [`SnapshotReader`] + [`SnapshotSession`] against the shared
//! [`ConcurrentCatalog`]. The loop alternates two phases:
//!
//! 1. **Ingest** — block on the submission channel until the admission
//!    window closes (size or wait bound, see [`crate::admission`]),
//!    shedding arrivals beyond the queue capacity with a typed
//!    [`AdmissionRejected`](stratrec_core::error::StratRecError::AdmissionRejected)
//!    response.
//! 2. **Serve** — observe the queue depth through the
//!    [`BackpressureController`], close the window (deadline-shedding
//!    requests whose budget is below the running service-time estimate),
//!    and serve the admitted batch through
//!    `StratRec::process_batch_with_reader_at` at the controller's quality.
//!
//! The service-time estimate is an exponentially weighted moving average of
//! measured window service times (`estimate ← (3·estimate + measured) / 4`),
//! seeded from [`AdmissionConfig::initial_estimate_ms`], so deadline
//! shedding adapts to the actual catalog size and churn pressure.
//!
//! Shutdown is cooperative: dropping the submission sender (what
//! [`ServerHandle::shutdown`] does) lets the loop finish serving every
//! request already queued — the exactly-one-response invariant holds
//! through shutdown.

use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stratrec_core::availability::AvailabilityPdf;
use stratrec_core::catalog::{ConcurrentCatalog, EpochSnapshot};
use stratrec_core::model::DeploymentRequest;
use stratrec_core::modeling::ModelLibrary;
use stratrec_core::prelude::{
    ServiceQuality, SnapshotSession, StratRec, StratRecConfig, StratRecReport,
};

use crate::admission::{AdmissionConfig, AdmissionWindow, QueuedRequest};
use crate::controller::{BackpressureController, ControllerConfig};
use crate::request::{ServedAnswer, StreamOutcome, StreamRequest, StreamResponse};

/// Everything the service loop is configured with.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeConfig {
    /// Admission window sizing, capacity and deadline estimate seed.
    pub admission: AdmissionConfig,
    /// Backpressure watermarks and recovery hysteresis.
    pub controller: ControllerConfig,
    /// The pipeline configuration (`k`, objective, aggregation).
    pub stratrec: StratRecConfig,
    /// When true, the server records a [`WindowRecord`] per served window —
    /// including the pinned snapshot — so degraded answers can be reenacted
    /// against `Baseline2` after the fact. Costs one snapshot pin per
    /// window; intended for tests, not production soak.
    pub record_windows: bool,
}

/// One served window, as recorded for after-the-fact reenactment: the exact
/// requests, the pinned snapshot they were planned against, and the report.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// 1-based sequence number of the window.
    pub window: u64,
    /// Quality the window was served at.
    pub quality: ServiceQuality,
    /// Epoch of the pinned snapshot.
    pub epoch: u64,
    /// The snapshot itself — reenactment replays the sequential pipeline
    /// over `snapshot.catalog()` and demands equality.
    pub snapshot: Arc<EpochSnapshot>,
    /// The admitted requests, in serve order.
    pub requests: Vec<DeploymentRequest>,
    /// Stream ids of the admitted requests, parallel to
    /// [`Self::requests`].
    pub ids: Vec<u64>,
    /// The report the window produced.
    pub report: StratRecReport,
}

/// Counters the service thread returns on shutdown.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Windows closed (served or fully shed).
    pub windows: u64,
    /// Requests served at [`ServiceQuality::Full`].
    pub served_full: u64,
    /// Requests served at [`ServiceQuality::Degraded`].
    pub served_degraded: u64,
    /// Requests shed with `DeadlineExceeded`.
    pub shed_deadline: u64,
    /// Requests shed with `AdmissionRejected`.
    pub shed_admission: u64,
    /// Requests answered with a typed pipeline failure.
    pub failed: u64,
    /// Windows the controller held at [`ServiceQuality::Degraded`].
    pub degraded_windows: u64,
    /// Largest queue depth observed at a window close.
    pub peak_queue_depth: usize,
    /// The controller's quality when the loop exited.
    pub final_quality: ServiceQuality,
    /// Per-window trace, populated only when
    /// [`ServeConfig::record_windows`] is set.
    pub trace: Vec<WindowRecord>,
}

impl ServerStats {
    /// Total typed responses delivered.
    #[must_use]
    pub fn responses(&self) -> u64 {
        self.served_full
            + self.served_degraded
            + self.shed_deadline
            + self.shed_admission
            + self.failed
    }
}

/// Builder for the service thread.
#[derive(Debug, Clone, Default)]
pub struct StreamServer {
    config: ServeConfig,
}

/// Handle to a running service thread: submit requests, receive responses,
/// shut down.
#[derive(Debug)]
pub struct ServerHandle {
    submit: Sender<(StreamRequest, Instant)>,
    responses: Receiver<StreamResponse>,
    thread: JoinHandle<ServerStats>,
}

impl StreamServer {
    /// A server builder with `config`.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        Self { config }
    }

    /// Spawns the service thread against the shared catalog and returns its
    /// handle. The thread subscribes a [`SnapshotReader`] immediately, so a
    /// churn writer publishing epochs concurrently is observed through
    /// delta migration, never a torn read.
    #[must_use]
    pub fn start(
        self,
        catalog: Arc<ConcurrentCatalog>,
        models: ModelLibrary,
        availability: AvailabilityPdf,
    ) -> ServerHandle {
        let (submit, ingest) = mpsc::channel::<(StreamRequest, Instant)>();
        let (respond, responses) = mpsc::channel::<StreamResponse>();
        let config = self.config;
        let thread = std::thread::spawn(move || {
            serve_loop(&config, &catalog, &models, &availability, &ingest, &respond)
        });
        ServerHandle {
            submit,
            responses,
            thread,
        }
    }
}

impl ServerHandle {
    /// Submits one request, stamping its enqueue instant now (queueing delay
    /// counts against the deadline). Returns `false` if the service thread
    /// has exited.
    pub fn submit(&self, request: StreamRequest) -> bool {
        self.submit.send((request, Instant::now())).is_ok()
    }

    /// Blocks up to `timeout` for the next response.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<StreamResponse> {
        self.responses.recv_timeout(timeout).ok()
    }

    /// Drains every response currently buffered, without blocking.
    #[must_use]
    pub fn drain_responses(&self) -> Vec<StreamResponse> {
        self.responses.try_iter().collect()
    }

    /// Closes the submission side, waits for the loop to serve everything
    /// still queued, and returns the final stats plus any responses not yet
    /// drained.
    ///
    /// # Panics
    ///
    /// Propagates a panic of the service thread — the soak harness treats
    /// that as a failed run.
    #[must_use]
    pub fn shutdown(self) -> (ServerStats, Vec<StreamResponse>) {
        drop(self.submit);
        let stats = self.thread.join().expect("service thread must not panic");
        let remaining = self.responses.try_iter().collect();
        (stats, remaining)
    }
}

fn serve_loop(
    config: &ServeConfig,
    catalog: &ConcurrentCatalog,
    models: &ModelLibrary,
    availability: &AvailabilityPdf,
    ingest: &Receiver<(StreamRequest, Instant)>,
    respond: &Sender<StreamResponse>,
) -> ServerStats {
    let layer = StratRec::new(config.stratrec);
    let mut reader = catalog.reader();
    let mut session = SnapshotSession::new();
    let mut window = AdmissionWindow::new(config.admission);
    let mut controller = BackpressureController::new(config.controller);
    let mut estimate = config.admission.initial_estimate();
    let mut stats = ServerStats::default();
    let mut open = true;

    loop {
        // Phase 1: ingest until the window closes or the channel drops.
        while open && !window.is_closed(Instant::now()) {
            let received = if window.is_empty() {
                // Nothing pending: no window to close, block for the next
                // arrival.
                ingest.recv().map_err(|_| RecvTimeoutError::Disconnected)
            } else {
                let budget = window.wait_budget(Instant::now()).unwrap_or(Duration::ZERO);
                ingest.recv_timeout(budget)
            };
            match received {
                Ok(arrival) => {
                    offer(&mut window, arrival, &mut stats, respond);
                    // Opportunistically drain everything already buffered so
                    // queue depth reflects the true backlog.
                    while let Ok(arrival) = ingest.try_recv() {
                        offer(&mut window, arrival, &mut stats, respond);
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
        }
        if window.is_empty() {
            if open {
                continue;
            }
            break;
        }

        // Phase 2: observe, close, shed, serve.
        let depth = window.depth();
        stats.peak_queue_depth = stats.peak_queue_depth.max(depth);
        let quality = controller.observe(depth);
        stats.windows += 1;
        if quality == ServiceQuality::Degraded {
            stats.degraded_windows += 1;
        }
        let seq = stats.windows;
        let close = Instant::now();
        let (admitted, shed) = window.take_batch(close, estimate);
        for (item, error) in shed {
            stats.shed_deadline += 1;
            deliver(respond, &item, seq, StreamOutcome::Shed(error));
        }
        if admitted.is_empty() {
            continue;
        }

        let requests: Vec<DeploymentRequest> =
            admitted.iter().map(|q| q.request.request.clone()).collect();
        let served_at = Instant::now();
        let result = layer.process_batch_with_reader_at(
            &requests,
            &mut reader,
            models,
            availability,
            &mut session,
            quality,
        );
        estimate = (estimate * 3 + served_at.elapsed()) / 4;

        match result {
            Ok((report, snapshot)) => {
                let mut answers: Vec<Option<ServedAnswer>> = vec![None; requests.len()];
                for rec in &report.batch.satisfied {
                    answers[rec.request_index] = Some(ServedAnswer::Recommended(rec.clone()));
                }
                for alt in &report.alternatives {
                    answers[alt.request_index] = Some(ServedAnswer::Alternative(alt.clone()));
                }
                for (item, answer) in admitted.iter().zip(answers) {
                    let answer = answer
                        .expect("pipeline contract: every request is satisfied or alternative");
                    match quality {
                        ServiceQuality::Full => stats.served_full += 1,
                        ServiceQuality::Degraded => stats.served_degraded += 1,
                    }
                    let outcome = StreamOutcome::Served {
                        quality,
                        epoch: snapshot.epoch(),
                        answer,
                    };
                    deliver(respond, item, seq, outcome);
                }
                if config.record_windows {
                    stats.trace.push(WindowRecord {
                        window: seq,
                        quality,
                        epoch: snapshot.epoch(),
                        snapshot,
                        requests,
                        ids: admitted.iter().map(|q| q.request.id).collect(),
                        report,
                    });
                }
            }
            Err(error) => {
                // A window-level pipeline failure still resolves every
                // member with a typed response.
                for item in &admitted {
                    stats.failed += 1;
                    deliver(respond, item, seq, StreamOutcome::Failed(error.clone()));
                }
            }
        }
    }

    stats.final_quality = controller.quality();
    stats
}

/// Queues one arrival, answering a capacity refusal with a typed shed.
fn offer(
    window: &mut AdmissionWindow,
    (request, enqueued): (StreamRequest, Instant),
    stats: &mut ServerStats,
    respond: &Sender<StreamResponse>,
) {
    let item = QueuedRequest { request, enqueued };
    if let Err(error) = window.offer(item.clone()) {
        stats.shed_admission += 1;
        // The refused request belongs to the window currently filling —
        // the one that will close as `windows + 1`.
        deliver(
            respond,
            &item,
            stats.windows + 1,
            StreamOutcome::Shed(error),
        );
    }
}

/// Sends the one typed response for `item`. A dropped receiver is not an
/// error — the client has walked away; the server keeps its invariants.
fn deliver(
    respond: &Sender<StreamResponse>,
    item: &QueuedRequest,
    window: u64,
    outcome: StreamOutcome,
) {
    let response = StreamResponse {
        id: item.request.id,
        tenant: item.request.tenant,
        window,
        latency: Instant::now().saturating_duration_since(item.enqueued),
        outcome,
    };
    let _ = respond.send(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stratrec_workload::BatchScenario;

    fn fixture() -> (Arc<ConcurrentCatalog>, ModelLibrary, AvailabilityPdf) {
        let instance = BatchScenario {
            batch_size: 1,
            strategy_count: 60,
            k: 3,
            seed: 7,
            ..BatchScenario::default()
        }
        .materialize();
        let catalog = instance.catalog();
        (
            Arc::new(ConcurrentCatalog::new(catalog)),
            instance.models,
            AvailabilityPdf::certain(0.6),
        )
    }

    fn stream_request(id: u64, deadline: Duration) -> StreamRequest {
        use stratrec_core::model::{DeploymentParameters, TaskType};
        StreamRequest {
            id,
            tenant: (id % 3) as usize,
            deadline,
            request: DeploymentRequest::new(
                id,
                TaskType::SentenceTranslation,
                DeploymentParameters::clamped(0.6 + 0.05 * (id % 5) as f64, 0.8, 0.9),
            ),
        }
    }

    #[test]
    fn every_submitted_request_gets_exactly_one_typed_response() {
        let (catalog, models, pdf) = fixture();
        let handle = StreamServer::new(ServeConfig::default()).start(catalog, models, pdf);
        let total = 40;
        for id in 0..total {
            assert!(handle.submit(stream_request(id, Duration::from_secs(5))));
        }
        let (stats, responses) = handle.shutdown();
        assert_eq!(responses.len(), total as usize);
        assert_eq!(stats.responses(), total);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..total).collect::<Vec<_>>());
        for response in &responses {
            assert!(response.outcome.is_served(), "no overload, no shedding");
        }
        assert_eq!(
            stats.served_full, total,
            "calm traffic stays at full quality"
        );
        assert_eq!(stats.final_quality, ServiceQuality::Full);
    }

    #[test]
    fn zero_deadline_requests_are_shed_typed_not_dropped() {
        let (catalog, models, pdf) = fixture();
        let handle = StreamServer::new(ServeConfig::default()).start(catalog, models, pdf);
        for id in 0..8 {
            assert!(handle.submit(stream_request(id, Duration::ZERO)));
        }
        let (stats, responses) = handle.shutdown();
        assert_eq!(responses.len(), 8);
        assert_eq!(stats.shed_deadline, 8);
        for response in responses {
            assert!(
                matches!(
                    response.outcome,
                    StreamOutcome::Shed(stratrec_core::error::StratRecError::DeadlineExceeded {
                        remaining_ms: 0,
                        ..
                    })
                ),
                "a zero budget can never beat the service estimate"
            );
        }
    }

    #[test]
    fn capacity_overflow_is_shed_typed_at_the_door() {
        let (catalog, models, pdf) = fixture();
        let config = ServeConfig {
            admission: AdmissionConfig {
                max_batch: 2,
                max_wait_ms: 50,
                queue_capacity: 4,
                initial_estimate_ms: 1,
            },
            ..ServeConfig::default()
        };
        // Stall the server by never letting it start: submit the whole
        // burst before the thread can drain, so some arrivals see a full
        // queue. Submission order races the service loop, so only the
        // accounting identity is asserted, not which ids were refused.
        let handle = StreamServer::new(config).start(catalog, models, pdf);
        let total = 200;
        for id in 0..total {
            assert!(handle.submit(stream_request(id, Duration::from_secs(5))));
        }
        let (stats, responses) = handle.shutdown();
        assert_eq!(responses.len(), total as usize, "no silent drops");
        assert_eq!(stats.responses(), total);
        assert_eq!(
            stats.served_full + stats.served_degraded + stats.shed_admission + stats.shed_deadline,
            total,
            "every outcome is served or typed-shed"
        );
    }

    #[test]
    fn shutdown_serves_the_remaining_queue_before_exiting() {
        let (catalog, models, pdf) = fixture();
        let handle = StreamServer::new(ServeConfig::default()).start(catalog, models, pdf);
        for id in 0..5 {
            assert!(handle.submit(stream_request(id, Duration::from_secs(5))));
        }
        // Shut down immediately: the queued requests must still resolve.
        let (stats, responses) = handle.shutdown();
        assert_eq!(responses.len(), 5);
        assert_eq!(stats.responses(), 5);
    }
}
