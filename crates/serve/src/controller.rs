//! The queue-depth backpressure controller: degrade, shed, recover.
//!
//! The controller is a **pure state machine** over queue-depth
//! observations — no clocks, no channels — so its whole behavior is
//! unit-testable deterministically. One observation is made per admission
//! window, right before the window is served:
//!
//! ```text
//!            depth ≥ degrade_watermark
//!      Full ───────────────────────────▶ Degraded
//!        ▲                                  │
//!        │  depth ≤ recover_watermark for   │
//!        └── recover_windows consecutive ◀──┘
//!                    windows
//! ```
//!
//! The two watermarks plus the consecutive-window requirement form the
//! hysteresis band: a queue oscillating between the watermarks keeps the
//! controller in `Degraded` (no flapping), and recovery is guaranteed
//! within `recover_windows` windows once the queue genuinely drains.

use serde::{Deserialize, Serialize};
use stratrec_core::prelude::ServiceQuality;

/// Watermarks and hysteresis of the [`BackpressureController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Queue depth at or above which the controller degrades to
    /// `Baseline2` service.
    pub degrade_watermark: usize,
    /// Queue depth at or below which a window counts as calm. Must sit
    /// strictly below [`Self::degrade_watermark`] for a meaningful
    /// hysteresis band.
    pub recover_watermark: usize,
    /// Consecutive calm windows required before quality returns to full.
    pub recover_windows: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            degrade_watermark: 64,
            recover_watermark: 16,
            recover_windows: 3,
        }
    }
}

/// The shed/degrade/recover state machine of the streaming front-end.
#[derive(Debug, Clone)]
pub struct BackpressureController {
    config: ControllerConfig,
    quality: ServiceQuality,
    calm_windows: usize,
}

impl BackpressureController {
    /// A controller starting at [`ServiceQuality::Full`].
    #[must_use]
    pub fn new(config: ControllerConfig) -> Self {
        Self {
            config,
            quality: ServiceQuality::Full,
            calm_windows: 0,
        }
    }

    /// The quality the controller currently serves at.
    #[must_use]
    pub fn quality(&self) -> ServiceQuality {
        self.quality
    }

    /// Feeds one per-window queue-depth observation and returns the quality
    /// to serve the window at. Degradation is immediate at the degrade
    /// watermark; recovery requires `recover_windows` consecutive
    /// observations at or below the recover watermark.
    pub fn observe(&mut self, queue_depth: usize) -> ServiceQuality {
        match self.quality {
            ServiceQuality::Full => {
                if queue_depth >= self.config.degrade_watermark {
                    self.quality = ServiceQuality::Degraded;
                    self.calm_windows = 0;
                }
            }
            ServiceQuality::Degraded => {
                if queue_depth <= self.config.recover_watermark {
                    self.calm_windows += 1;
                    if self.calm_windows >= self.config.recover_windows {
                        self.quality = ServiceQuality::Full;
                        self.calm_windows = 0;
                    }
                } else {
                    self.calm_windows = 0;
                }
            }
        }
        self.quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BackpressureController {
        BackpressureController::new(ControllerConfig {
            degrade_watermark: 10,
            recover_watermark: 4,
            recover_windows: 3,
        })
    }

    #[test]
    fn degrades_immediately_at_the_watermark() {
        let mut c = controller();
        assert_eq!(c.observe(9), ServiceQuality::Full);
        assert_eq!(c.observe(10), ServiceQuality::Degraded);
        assert_eq!(c.quality(), ServiceQuality::Degraded);
    }

    #[test]
    fn recovery_needs_consecutive_calm_windows() {
        let mut c = controller();
        c.observe(50);
        assert_eq!(c.observe(4), ServiceQuality::Degraded, "calm 1 of 3");
        assert_eq!(c.observe(3), ServiceQuality::Degraded, "calm 2 of 3");
        assert_eq!(c.observe(0), ServiceQuality::Full, "calm 3 of 3 recovers");
    }

    #[test]
    fn a_loud_window_resets_the_calm_streak() {
        let mut c = controller();
        c.observe(50);
        c.observe(4);
        c.observe(4);
        // One observation inside the hysteresis band (above recover, below
        // degrade) resets the streak — no flapping at the boundary.
        assert_eq!(c.observe(7), ServiceQuality::Degraded);
        c.observe(4);
        c.observe(4);
        assert_eq!(c.observe(4), ServiceQuality::Full, "streak rebuilt");
    }

    #[test]
    fn oscillation_between_the_watermarks_never_recovers() {
        let mut c = controller();
        c.observe(50);
        for _ in 0..100 {
            assert_eq!(c.observe(5), ServiceQuality::Degraded);
            assert_eq!(c.observe(9), ServiceQuality::Degraded);
        }
    }

    #[test]
    fn recovery_is_bounded_once_the_queue_drains() {
        let mut c = controller();
        c.observe(50);
        let mut windows = 0;
        while c.observe(0) == ServiceQuality::Degraded {
            windows += 1;
            assert!(windows < 10, "recovery must be bounded");
        }
        // `recover_windows = 3` ⇒ the third calm window flips to Full, so
        // two observations stay degraded and the third recovers.
        assert_eq!(windows, 2);
    }

    #[test]
    fn full_quality_ignores_sub_watermark_noise() {
        let mut c = controller();
        for depth in [0, 4, 9, 5, 0, 9] {
            assert_eq!(c.observe(depth), ServiceQuality::Full);
        }
    }
}
