//! # StratRec streaming front-end
//!
//! The batch pipeline of `stratrec-core` answers pre-assembled batches; this
//! crate turns it into a long-running **service**. Requests arrive on an
//! MPSC queue tagged with tenant and deadline, an **admission window**
//! groups them into batches (closing on size or wait, whichever first), and
//! a single service thread serves each window through a
//! [`SnapshotReader`](stratrec_core::catalog::SnapshotReader) +
//! [`SnapshotSession`](stratrec_core::prelude::SnapshotSession) against the
//! live [`ConcurrentCatalog`](stratrec_core::catalog::ConcurrentCatalog)
//! snapshot while a churn writer keeps publishing epochs.
//!
//! Robustness is the headline, built on three rules:
//!
//! 1. **Never a silent drop.** Every submitted request receives exactly one
//!    typed [`StreamResponse`]: served (full or degraded), shed
//!    ([`AdmissionRejected`](stratrec_core::error::StratRecError::AdmissionRejected)
//!    when the queue is at capacity,
//!    [`DeadlineExceeded`](stratrec_core::error::StratRecError::DeadlineExceeded)
//!    when the latency budget cannot be met), or — should the pipeline
//!    itself fail — a typed failure.
//! 2. **Degrade before collapsing.** When the queue crosses the degrade
//!    watermark, the [`BackpressureController`] switches the ADPaR stage to
//!    the cheap `Baseline2` solver. Responses carry
//!    [`ServiceQuality::Degraded`](stratrec_core::prelude::ServiceQuality)
//!    and the answers are bit-identical to `Baseline2` on the same pinned
//!    snapshot — reenactable after the fact from the window trace.
//! 3. **Recover with hysteresis.** Full quality returns only after the
//!    queue has stayed at or below the recover watermark for a configured
//!    number of consecutive windows, so the controller cannot flap at the
//!    boundary.
//!
//! The thin daemon binary `stratrec-served` wraps the server in a
//! self-checking overload soak (open-loop arrivals at a multiple of the
//! measured sustainable throughput) for CI.

#![forbid(unsafe_code)]

pub mod admission;
pub mod controller;
pub mod request;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionWindow, QueuedRequest};
pub use controller::{BackpressureController, ControllerConfig};
pub use request::{ServedAnswer, StreamOutcome, StreamRequest, StreamResponse};
pub use server::{ServeConfig, ServerHandle, ServerStats, StreamServer, WindowRecord};
