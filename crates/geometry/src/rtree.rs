//! A bulk-loaded R-tree over 3-D points.
//!
//! The paper's `Baseline3` for the ADPaR problem "is designed by modifying
//! [the] space partitioning data structure R-Tree … We treat each strategy['s]
//! parameters as a point in a 3-D space and index them using an R-Tree. Then,
//! it scans the tree to find if there is a minimum bounding box (MBB) that
//! exactly contains k strategies" (§5.2.1). This module provides that index:
//! a Sort-Tile-Recursive (STR) bulk-loaded R-tree whose nodes expose their
//! MBBs, plus range counting / reporting used elsewhere for verification.

use serde::{Deserialize, Serialize};

use crate::aabb::Aabb3;
use crate::point::{Axis, Point3};

/// Default maximum number of entries per node.
pub const DEFAULT_NODE_CAPACITY: usize = 8;

/// A node of the R-tree together with its minimum bounding box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Minimum bounding box of everything below this node.
    pub mbb: Aabb3,
    /// Children of the node.
    pub content: NodeContent,
}

/// Children of a node: either nested nodes or indexed leaf points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeContent {
    /// An internal node holding child nodes.
    Internal(Vec<Node>),
    /// A leaf holding `(original index, point)` entries.
    Leaf(Vec<(usize, Point3)>),
}

/// An R-tree over a fixed set of points, bulk-loaded with the STR algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
    node_capacity: usize,
}

impl RTree {
    /// Bulk-loads a tree from `points` with the default node capacity.
    #[must_use]
    pub fn bulk_load(points: &[Point3]) -> Self {
        Self::bulk_load_with_capacity(points, DEFAULT_NODE_CAPACITY)
    }

    /// Bulk-loads a tree with an explicit node capacity (minimum 2).
    #[must_use]
    pub fn bulk_load_with_capacity(points: &[Point3], node_capacity: usize) -> Self {
        let node_capacity = node_capacity.max(2);
        let entries: Vec<(usize, Point3)> = points.iter().copied().enumerate().collect();
        let root = if entries.is_empty() {
            None
        } else {
            Some(build_str(entries, node_capacity))
        };
        Self {
            root,
            len: points.len(),
            node_capacity,
        }
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node capacity the tree was built with.
    #[must_use]
    pub fn node_capacity(&self) -> usize {
        self.node_capacity
    }

    /// The root node, if the tree is non-empty.
    #[must_use]
    pub fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }

    /// Counts the indexed points contained in `query` (inclusive bounds).
    #[must_use]
    pub fn count_in_box(&self, query: &Aabb3) -> usize {
        let mut count = 0;
        if let Some(root) = &self.root {
            count_in(root, query, &mut count);
        }
        count
    }

    /// Reports the original indices of the points contained in `query`,
    /// sorted ascending.
    #[must_use]
    pub fn query_box(&self, query: &Aabb3) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            collect_in(root, query, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Visits every node of the tree (pre-order), calling `visit` with the
    /// node and its depth. Used by `Baseline3` to scan MBBs.
    pub fn visit_nodes<F: FnMut(&Node, usize)>(&self, mut visit: F) {
        if let Some(root) = &self.root {
            visit_rec(root, 0, &mut visit);
        }
    }

    /// Returns every node MBB together with the number of points below it,
    /// in pre-order. This is the "scan the tree" primitive of `Baseline3`.
    #[must_use]
    pub fn node_summaries(&self) -> Vec<(Aabb3, usize)> {
        let mut out = Vec::new();
        self.visit_nodes(|node, _| {
            out.push((node.mbb, count_points(node)));
        });
        out
    }
}

fn visit_rec<F: FnMut(&Node, usize)>(node: &Node, depth: usize, visit: &mut F) {
    visit(node, depth);
    if let NodeContent::Internal(children) = &node.content {
        for child in children {
            visit_rec(child, depth + 1, visit);
        }
    }
}

fn count_points(node: &Node) -> usize {
    match &node.content {
        NodeContent::Leaf(entries) => entries.len(),
        NodeContent::Internal(children) => children.iter().map(count_points).sum(),
    }
}

fn count_in(node: &Node, query: &Aabb3, count: &mut usize) {
    if !node.mbb.intersects(query) {
        return;
    }
    match &node.content {
        NodeContent::Leaf(entries) => {
            *count += entries
                .iter()
                .filter(|(_, p)| query.contains(p, 0.0))
                .count();
        }
        NodeContent::Internal(children) => {
            for child in children {
                count_in(child, query, count);
            }
        }
    }
}

fn collect_in(node: &Node, query: &Aabb3, out: &mut Vec<usize>) {
    if !node.mbb.intersects(query) {
        return;
    }
    match &node.content {
        NodeContent::Leaf(entries) => {
            out.extend(
                entries
                    .iter()
                    .filter(|(_, p)| query.contains(p, 0.0))
                    .map(|(i, _)| *i),
            );
        }
        NodeContent::Internal(children) => {
            for child in children {
                collect_in(child, query, out);
            }
        }
    }
}

/// Builds the tree bottom-up with Sort-Tile-Recursive packing: sort by x,
/// partition into vertical slabs, sort each slab by y, partition again, sort
/// by z and cut into leaves; then recursively pack the resulting nodes.
fn build_str(mut entries: Vec<(usize, Point3)>, capacity: usize) -> Node {
    if entries.len() <= capacity {
        let mbb = Aabb3::bounding(&entries.iter().map(|(_, p)| *p).collect::<Vec<_>>())
            .expect("non-empty entries");
        return Node {
            mbb,
            content: NodeContent::Leaf(entries),
        };
    }

    let leaf_count = entries.len().div_ceil(capacity);
    let slab_count = (leaf_count as f64).cbrt().ceil() as usize;
    let slab_count = slab_count.max(1);

    entries.sort_by(|a, b| a.1.coord(Axis::X).total_cmp(&b.1.coord(Axis::X)));
    let per_slab = entries.len().div_ceil(slab_count);

    let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
    for slab in entries.chunks(per_slab.max(1)) {
        let mut slab: Vec<(usize, Point3)> = slab.to_vec();
        slab.sort_by(|a, b| a.1.coord(Axis::Y).total_cmp(&b.1.coord(Axis::Y)));
        let runs = slab.len().div_ceil(capacity);
        let run_count = (runs as f64).sqrt().ceil() as usize;
        let per_run = slab.len().div_ceil(run_count.max(1));
        for run in slab.chunks(per_run.max(1)) {
            let mut run: Vec<(usize, Point3)> = run.to_vec();
            run.sort_by(|a, b| a.1.coord(Axis::Z).total_cmp(&b.1.coord(Axis::Z)));
            for chunk in run.chunks(capacity) {
                let points: Vec<Point3> = chunk.iter().map(|(_, p)| *p).collect();
                let mbb = Aabb3::bounding(&points).expect("non-empty chunk");
                leaves.push(Node {
                    mbb,
                    content: NodeContent::Leaf(chunk.to_vec()),
                });
            }
        }
    }

    pack_upwards(leaves, capacity)
}

/// Packs a level of nodes into parent nodes until a single root remains.
fn pack_upwards(mut level: Vec<Node>, capacity: usize) -> Node {
    while level.len() > 1 {
        level.sort_by(|a, b| {
            a.mbb
                .center()
                .coord(Axis::X)
                .total_cmp(&b.mbb.center().coord(Axis::X))
        });
        let mut next: Vec<Node> = Vec::with_capacity(level.len().div_ceil(capacity));
        for chunk in level.chunks(capacity) {
            let mbb = chunk
                .iter()
                .map(|n| n.mbb)
                .reduce(|a, b| a.union(&b))
                .expect("non-empty chunk");
            next.push(Node {
                mbb,
                content: NodeContent::Internal(chunk.to_vec()),
            });
        }
        level = next;
    }
    level.pop().expect("at least one node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn linear_count(points: &[Point3], query: &Aabb3) -> usize {
        points.iter().filter(|p| query.contains(p, 0.0)).count()
    }

    #[test]
    fn empty_tree_behaves() {
        let tree = RTree::bulk_load(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.root().is_none());
        let q = Aabb3::anchored_at_origin(Point3::new(1.0, 1.0, 1.0));
        assert_eq!(tree.count_in_box(&q), 0);
        assert!(tree.query_box(&q).is_empty());
        assert!(tree.node_summaries().is_empty());
    }

    #[test]
    fn small_tree_is_a_single_leaf() {
        let points = random_points(5, 1);
        let tree = RTree::bulk_load(&points);
        assert_eq!(tree.len(), 5);
        match &tree.root().unwrap().content {
            NodeContent::Leaf(entries) => assert_eq!(entries.len(), 5),
            NodeContent::Internal(_) => panic!("expected a leaf root"),
        }
    }

    #[test]
    fn queries_match_linear_scan() {
        let points = random_points(200, 7);
        let tree = RTree::bulk_load(&points);
        let queries = [
            Aabb3::anchored_at_origin(Point3::new(0.5, 0.5, 0.5)),
            Aabb3::new(Point3::new(0.2, 0.2, 0.2), Point3::new(0.8, 0.9, 0.4)),
            Aabb3::anchored_at_origin(Point3::new(1.0, 1.0, 1.0)),
            Aabb3::from_point(points[17]),
        ];
        for q in queries {
            assert_eq!(tree.count_in_box(&q), linear_count(&points, &q));
            let reported = tree.query_box(&q);
            assert_eq!(reported.len(), linear_count(&points, &q));
            for idx in reported {
                assert!(q.contains(&points[idx], 0.0));
            }
        }
    }

    #[test]
    fn node_mbbs_contain_their_points() {
        let points = random_points(300, 11);
        let tree = RTree::bulk_load_with_capacity(&points, 4);
        assert_eq!(tree.node_capacity(), 4);
        tree.visit_nodes(|node, _| match &node.content {
            NodeContent::Leaf(entries) => {
                for (_, p) in entries {
                    assert!(node.mbb.contains(p, 1e-12));
                }
            }
            NodeContent::Internal(children) => {
                for child in children {
                    assert!(node.mbb.contains(&child.mbb.min, 1e-12));
                    assert!(node.mbb.contains(&child.mbb.max, 1e-12));
                }
            }
        });
    }

    #[test]
    fn node_summaries_cover_every_point_exactly_once_at_leaf_level() {
        let points = random_points(100, 3);
        let tree = RTree::bulk_load(&points);
        let total_in_root = tree
            .node_summaries()
            .first()
            .map(|(_, count)| *count)
            .unwrap();
        assert_eq!(total_in_root, points.len());
    }

    #[test]
    fn capacity_below_two_is_clamped() {
        let points = random_points(10, 5);
        let tree = RTree::bulk_load_with_capacity(&points, 0);
        assert_eq!(tree.node_capacity(), 2);
        let q = Aabb3::anchored_at_origin(Point3::new(1.0, 1.0, 1.0));
        assert_eq!(tree.count_in_box(&q), 10);
    }

    proptest! {
        #[test]
        fn count_matches_linear_scan_for_random_boxes(
            raw in proptest::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..120),
            corner_a in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
            corner_b in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
            capacity in 2_usize..10,
        ) {
            let points: Vec<Point3> = raw.iter().map(|&(x, y, z)| Point3::new(x, y, z)).collect();
            let tree = RTree::bulk_load_with_capacity(&points, capacity);
            let query = Aabb3::new(
                Point3::new(corner_a.0, corner_a.1, corner_a.2),
                Point3::new(corner_b.0, corner_b.1, corner_b.2),
            );
            prop_assert_eq!(tree.count_in_box(&query), linear_count(&points, &query));
            prop_assert_eq!(tree.query_box(&query).len(), linear_count(&points, &query));
        }
    }
}
