//! A bulk-loaded R-tree over 3-D points.
//!
//! The paper's `Baseline3` for the ADPaR problem "is designed by modifying
//! [the] space partitioning data structure R-Tree … We treat each strategy['s]
//! parameters as a point in a 3-D space and index them using an R-Tree. Then,
//! it scans the tree to find if there is a minimum bounding box (MBB) that
//! exactly contains k strategies" (§5.2.1). This module provides that index:
//! a Sort-Tile-Recursive (STR) bulk-loaded R-tree whose nodes expose their
//! MBBs, plus range counting / reporting used elsewhere for verification.
//!
//! Beyond bulk loading, the tree supports **incremental mutation** for the
//! log-structured [`StrategyCatalog`] overlay (`stratrec_core::catalog`):
//! [`RTree::insert`] descends by least volume enlargement and splits
//! overflowing nodes with the classic quadratic split, and [`RTree::remove`]
//! deletes one entry, prunes emptied nodes, lifts single-child internals and
//! re-tightens every MBB on the path. Entries carry caller-chosen indices
//! ([`RTree::bulk_load_entries`]), so an index can keep stable slot numbers
//! across merges even when earlier slots have been retired.
//!
//! [`StrategyCatalog`]: ../stratrec_core/catalog/struct.StrategyCatalog.html

use serde::{Deserialize, Serialize};

use crate::aabb::Aabb3;
use crate::point::{Axis, Point3};

/// Default maximum number of entries per node.
pub const DEFAULT_NODE_CAPACITY: usize = 8;

/// A node of the R-tree together with its minimum bounding box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Minimum bounding box of everything below this node.
    pub mbb: Aabb3,
    /// Children of the node.
    pub content: NodeContent,
}

/// Children of a node: either nested nodes or indexed leaf points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeContent {
    /// An internal node holding child nodes.
    Internal(Vec<Node>),
    /// A leaf holding `(original index, point)` entries.
    Leaf(Vec<(usize, Point3)>),
}

/// An R-tree over a fixed set of points, bulk-loaded with the STR algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
    node_capacity: usize,
}

impl RTree {
    /// Bulk-loads a tree from `points` with the default node capacity.
    #[must_use]
    pub fn bulk_load(points: &[Point3]) -> Self {
        Self::bulk_load_with_capacity(points, DEFAULT_NODE_CAPACITY)
    }

    /// Bulk-loads a tree with an explicit node capacity (minimum 2).
    #[must_use]
    pub fn bulk_load_with_capacity(points: &[Point3], node_capacity: usize) -> Self {
        Self::bulk_load_entries(points.iter().copied().enumerate().collect(), node_capacity)
    }

    /// Bulk-loads a tree from explicit `(index, point)` entries. Unlike
    /// [`Self::bulk_load`], the caller controls the reported indices — the
    /// `StrategyCatalog` uses this to rebuild over the *live* strategy slots
    /// while keeping slot numbers stable across retirements.
    #[must_use]
    pub fn bulk_load_entries(entries: Vec<(usize, Point3)>, node_capacity: usize) -> Self {
        let node_capacity = node_capacity.max(2);
        let len = entries.len();
        let root = if entries.is_empty() {
            None
        } else {
            Some(build_str(entries, node_capacity))
        };
        Self {
            root,
            len,
            node_capacity,
        }
    }

    /// Inserts one `(index, point)` entry, descending by least volume
    /// enlargement and splitting overflowing nodes (quadratic split). The
    /// caller is responsible for keeping indices unique; [`Self::remove`]
    /// deletes by index.
    pub fn insert(&mut self, idx: usize, point: Point3) {
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(Node {
                    mbb: Aabb3::from_point(point),
                    content: NodeContent::Leaf(vec![(idx, point)]),
                });
            }
            Some(mut root) => {
                if let Some(sibling) = insert_rec(&mut root, idx, point, self.node_capacity) {
                    let mbb = root.mbb.union(&sibling.mbb);
                    root = Node {
                        mbb,
                        content: NodeContent::Internal(vec![root, sibling]),
                    };
                }
                self.root = Some(root);
            }
        }
    }

    /// Removes the entry with index `idx` located at `point`, returning
    /// whether it was found. Emptied nodes are pruned, single-child internal
    /// nodes are collapsed and every MBB on the deletion path is re-tightened
    /// to exactly bound its remaining children.
    pub fn remove(&mut self, idx: usize, point: &Point3) -> bool {
        let Some(mut root) = self.root.take() else {
            return false;
        };
        let removed = remove_rec(&mut root, idx, point);
        if removed {
            self.len -= 1;
        }
        self.root = match root {
            Node {
                content: NodeContent::Leaf(entries),
                ..
            } if entries.is_empty() => None,
            Node {
                content: NodeContent::Internal(children),
                ..
            } if children.is_empty() => None,
            mut other => {
                lift_single_child(&mut other);
                Some(other)
            }
        };
        removed
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node capacity the tree was built with.
    #[must_use]
    pub fn node_capacity(&self) -> usize {
        self.node_capacity
    }

    /// The root node, if the tree is non-empty.
    #[must_use]
    pub fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }

    /// Counts the indexed points contained in `query` (inclusive bounds).
    #[must_use]
    pub fn count_in_box(&self, query: &Aabb3) -> usize {
        let mut count = 0;
        if let Some(root) = &self.root {
            count_in(root, query, &mut count);
        }
        count
    }

    /// Reports the original indices of the points contained in `query`,
    /// sorted ascending.
    #[must_use]
    pub fn query_box(&self, query: &Aabb3) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            collect_in(root, query, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Visits every node of the tree (pre-order), calling `visit` with the
    /// node and its depth. Used by `Baseline3` to scan MBBs.
    pub fn visit_nodes<F: FnMut(&Node, usize)>(&self, mut visit: F) {
        if let Some(root) = &self.root {
            visit_rec(root, 0, &mut visit);
        }
    }

    /// Returns every node MBB together with the number of points below it,
    /// in pre-order. This is the "scan the tree" primitive of `Baseline3`.
    #[must_use]
    pub fn node_summaries(&self) -> Vec<(Aabb3, usize)> {
        let mut out = Vec::new();
        self.visit_nodes(|node, _| {
            out.push((node.mbb, count_points(node)));
        });
        out
    }
}

fn visit_rec<F: FnMut(&Node, usize)>(node: &Node, depth: usize, visit: &mut F) {
    visit(node, depth);
    if let NodeContent::Internal(children) = &node.content {
        for child in children {
            visit_rec(child, depth + 1, visit);
        }
    }
}

fn count_points(node: &Node) -> usize {
    match &node.content {
        NodeContent::Leaf(entries) => entries.len(),
        NodeContent::Internal(children) => children.iter().map(count_points).sum(),
    }
}

fn count_in(node: &Node, query: &Aabb3, count: &mut usize) {
    if !node.mbb.intersects(query) {
        return;
    }
    match &node.content {
        NodeContent::Leaf(entries) => {
            *count += entries
                .iter()
                .filter(|(_, p)| query.contains(p, 0.0))
                .count();
        }
        NodeContent::Internal(children) => {
            for child in children {
                count_in(child, query, count);
            }
        }
    }
}

fn collect_in(node: &Node, query: &Aabb3, out: &mut Vec<usize>) {
    if !node.mbb.intersects(query) {
        return;
    }
    match &node.content {
        NodeContent::Leaf(entries) => {
            out.extend(
                entries
                    .iter()
                    .filter(|(_, p)| query.contains(p, 0.0))
                    .map(|(i, _)| *i),
            );
        }
        NodeContent::Internal(children) => {
            for child in children {
                collect_in(child, query, out);
            }
        }
    }
}

/// Inserts an entry below `node`, returning a split-off sibling when the node
/// overflowed its capacity.
fn insert_rec(node: &mut Node, idx: usize, point: Point3, capacity: usize) -> Option<Node> {
    node.mbb = node.mbb.expanded_to_include(point);
    match &mut node.content {
        NodeContent::Leaf(entries) => {
            entries.push((idx, point));
            if entries.len() <= capacity {
                return None;
            }
            let items = std::mem::take(entries);
            let (a, mbb_a, b, mbb_b) = quadratic_split(items, |(_, p)| Aabb3::from_point(*p));
            node.mbb = mbb_a;
            node.content = NodeContent::Leaf(a);
            Some(Node {
                mbb: mbb_b,
                content: NodeContent::Leaf(b),
            })
        }
        NodeContent::Internal(children) => {
            let chosen = choose_subtree(children, point);
            if let Some(sibling) = insert_rec(&mut children[chosen], idx, point, capacity) {
                children.push(sibling);
            }
            if children.len() <= capacity {
                return None;
            }
            let items = std::mem::take(children);
            let (a, mbb_a, b, mbb_b) = quadratic_split(items, |n: &Node| n.mbb);
            node.mbb = mbb_a;
            node.content = NodeContent::Internal(a);
            Some(Node {
                mbb: mbb_b,
                content: NodeContent::Internal(b),
            })
        }
    }
}

/// The child whose MBB needs the least volume enlargement to absorb `point`
/// (ties: smaller volume, then first in child order — deterministic).
fn choose_subtree(children: &[Node], point: Point3) -> usize {
    let mut best = 0;
    let mut best_enlargement = f64::INFINITY;
    let mut best_volume = f64::INFINITY;
    for (i, child) in children.iter().enumerate() {
        let volume = child.mbb.volume();
        let enlargement = child.mbb.expanded_to_include(point).volume() - volume;
        if enlargement < best_enlargement
            || (enlargement == best_enlargement && volume < best_volume)
        {
            best = i;
            best_enlargement = enlargement;
            best_volume = volume;
        }
    }
    best
}

/// Guttman's quadratic split: seed the two groups with the pair wasting the
/// most volume when joined, then assign every other item to the group whose
/// MBB grows least (ties: smaller group MBB volume, then the smaller
/// group, then group A). A minimum-fill rule (~40 %) forces the remaining
/// items into an underfull group once it needs all of them, so degenerate
/// inputs — duplicate points, identical boxes — still split near-evenly
/// instead of `(capacity, 1)`.
fn quadratic_split<T>(
    items: Vec<T>,
    mbb_of: impl Fn(&T) -> Aabb3,
) -> (Vec<T>, Aabb3, Vec<T>, Aabb3) {
    debug_assert!(items.len() >= 2, "cannot split fewer than two items");
    let boxes: Vec<Aabb3> = items.iter().map(&mbb_of).collect();
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..boxes.len() {
        for j in (i + 1)..boxes.len() {
            let waste = boxes[i].union(&boxes[j]).volume() - boxes[i].volume() - boxes[j].volume();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let total = items.len();
    let min_fill = (total * 2 / 5).max(1);
    let mut group_a: Vec<T> = Vec::with_capacity(total);
    let mut group_b: Vec<T> = Vec::with_capacity(total);
    let mut mbb_a = boxes[seed_a];
    let mut mbb_b = boxes[seed_b];
    for (pos, item) in items.into_iter().enumerate() {
        if pos == seed_a {
            group_a.push(item);
            continue;
        }
        if pos == seed_b {
            group_b.push(item);
            continue;
        }
        // Non-seed items still to come after this one; if a group needs this
        // item and all of them just to reach the minimum fill, it takes them.
        let after_this = remaining_non_seeds(pos, seed_a, seed_b, total);
        let to_a = if group_a.len() + after_this < min_fill {
            true
        } else if group_b.len() + after_this < min_fill {
            false
        } else {
            let grown_a = mbb_a.union(&boxes[pos]);
            let grown_b = mbb_b.union(&boxes[pos]);
            let delta_a = grown_a.volume() - mbb_a.volume();
            let delta_b = grown_b.volume() - mbb_b.volume();
            delta_a < delta_b
                || (delta_a == delta_b
                    && (mbb_a.volume() < mbb_b.volume()
                        || (mbb_a.volume() == mbb_b.volume() && group_a.len() <= group_b.len())))
        };
        if to_a {
            mbb_a = mbb_a.union(&boxes[pos]);
            group_a.push(item);
        } else {
            mbb_b = mbb_b.union(&boxes[pos]);
            group_b.push(item);
        }
    }
    (group_a, mbb_a, group_b, mbb_b)
}

/// Number of non-seed items strictly after position `pos`.
fn remaining_non_seeds(pos: usize, seed_a: usize, seed_b: usize, total: usize) -> usize {
    let mut remaining = total - 1 - pos;
    if seed_a > pos {
        remaining -= 1;
    }
    if seed_b > pos {
        remaining -= 1;
    }
    remaining
}

/// Removes the entry `idx` at `point` from the subtree under `node`,
/// re-tightening MBBs and pruning emptied children on the way back up.
fn remove_rec(node: &mut Node, idx: usize, point: &Point3) -> bool {
    match &mut node.content {
        NodeContent::Leaf(entries) => {
            let before = entries.len();
            entries.retain(|(i, _)| *i != idx);
            let removed = entries.len() < before;
            if removed && !entries.is_empty() {
                let points: Vec<Point3> = entries.iter().map(|(_, p)| *p).collect();
                node.mbb = Aabb3::bounding(&points).expect("leaf is non-empty");
            }
            removed
        }
        NodeContent::Internal(children) => {
            let mut removed = false;
            for child in children.iter_mut() {
                if child.mbb.contains(point, 1e-12) && remove_rec(child, idx, point) {
                    removed = true;
                    break;
                }
            }
            if removed {
                children.retain(|child| !is_empty_node(child));
                for child in children.iter_mut() {
                    lift_single_child(child);
                }
                if let Some(mbb) = children.iter().map(|c| c.mbb).reduce(|a, b| a.union(&b)) {
                    node.mbb = mbb;
                }
            }
            removed
        }
    }
}

fn is_empty_node(node: &Node) -> bool {
    match &node.content {
        NodeContent::Leaf(entries) => entries.is_empty(),
        NodeContent::Internal(children) => children.is_empty(),
    }
}

/// Replaces internal nodes holding exactly one child with that child,
/// shrinking unnecessary height left behind by deletions.
fn lift_single_child(node: &mut Node) {
    while let NodeContent::Internal(children) = &mut node.content {
        if children.len() == 1 {
            *node = children.pop().expect("one child present");
        } else {
            break;
        }
    }
}

/// Builds the tree bottom-up with Sort-Tile-Recursive packing: sort by x,
/// partition into vertical slabs, sort each slab by y, partition again, sort
/// by z and cut into leaves; then recursively pack the resulting nodes.
fn build_str(mut entries: Vec<(usize, Point3)>, capacity: usize) -> Node {
    if entries.len() <= capacity {
        let mbb = Aabb3::bounding(&entries.iter().map(|(_, p)| *p).collect::<Vec<_>>())
            .expect("non-empty entries");
        return Node {
            mbb,
            content: NodeContent::Leaf(entries),
        };
    }

    let leaf_count = entries.len().div_ceil(capacity);
    let slab_count = (leaf_count as f64).cbrt().ceil() as usize;
    let slab_count = slab_count.max(1);

    entries.sort_by(|a, b| a.1.coord(Axis::X).total_cmp(&b.1.coord(Axis::X)));
    let per_slab = entries.len().div_ceil(slab_count);

    let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
    for slab in entries.chunks(per_slab.max(1)) {
        let mut slab: Vec<(usize, Point3)> = slab.to_vec();
        slab.sort_by(|a, b| a.1.coord(Axis::Y).total_cmp(&b.1.coord(Axis::Y)));
        let runs = slab.len().div_ceil(capacity);
        let run_count = (runs as f64).sqrt().ceil() as usize;
        let per_run = slab.len().div_ceil(run_count.max(1));
        for run in slab.chunks(per_run.max(1)) {
            let mut run: Vec<(usize, Point3)> = run.to_vec();
            run.sort_by(|a, b| a.1.coord(Axis::Z).total_cmp(&b.1.coord(Axis::Z)));
            for chunk in run.chunks(capacity) {
                let points: Vec<Point3> = chunk.iter().map(|(_, p)| *p).collect();
                let mbb = Aabb3::bounding(&points).expect("non-empty chunk");
                leaves.push(Node {
                    mbb,
                    content: NodeContent::Leaf(chunk.to_vec()),
                });
            }
        }
    }

    pack_upwards(leaves, capacity)
}

/// Packs a level of nodes into parent nodes until a single root remains.
fn pack_upwards(mut level: Vec<Node>, capacity: usize) -> Node {
    while level.len() > 1 {
        level.sort_by(|a, b| {
            a.mbb
                .center()
                .coord(Axis::X)
                .total_cmp(&b.mbb.center().coord(Axis::X))
        });
        let mut next: Vec<Node> = Vec::with_capacity(level.len().div_ceil(capacity));
        for chunk in level.chunks(capacity) {
            let mbb = chunk
                .iter()
                .map(|n| n.mbb)
                .reduce(|a, b| a.union(&b))
                .expect("non-empty chunk");
            next.push(Node {
                mbb,
                content: NodeContent::Internal(chunk.to_vec()),
            });
        }
        level = next;
    }
    level.pop().expect("at least one node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn linear_count(points: &[Point3], query: &Aabb3) -> usize {
        points.iter().filter(|p| query.contains(p, 0.0)).count()
    }

    #[test]
    fn empty_tree_behaves() {
        let tree = RTree::bulk_load(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.root().is_none());
        let q = Aabb3::anchored_at_origin(Point3::new(1.0, 1.0, 1.0));
        assert_eq!(tree.count_in_box(&q), 0);
        assert!(tree.query_box(&q).is_empty());
        assert!(tree.node_summaries().is_empty());
    }

    #[test]
    fn small_tree_is_a_single_leaf() {
        let points = random_points(5, 1);
        let tree = RTree::bulk_load(&points);
        assert_eq!(tree.len(), 5);
        match &tree.root().unwrap().content {
            NodeContent::Leaf(entries) => assert_eq!(entries.len(), 5),
            NodeContent::Internal(_) => panic!("expected a leaf root"),
        }
    }

    #[test]
    fn queries_match_linear_scan() {
        let points = random_points(200, 7);
        let tree = RTree::bulk_load(&points);
        let queries = [
            Aabb3::anchored_at_origin(Point3::new(0.5, 0.5, 0.5)),
            Aabb3::new(Point3::new(0.2, 0.2, 0.2), Point3::new(0.8, 0.9, 0.4)),
            Aabb3::anchored_at_origin(Point3::new(1.0, 1.0, 1.0)),
            Aabb3::from_point(points[17]),
        ];
        for q in queries {
            assert_eq!(tree.count_in_box(&q), linear_count(&points, &q));
            let reported = tree.query_box(&q);
            assert_eq!(reported.len(), linear_count(&points, &q));
            for idx in reported {
                assert!(q.contains(&points[idx], 0.0));
            }
        }
    }

    #[test]
    fn node_mbbs_contain_their_points() {
        let points = random_points(300, 11);
        let tree = RTree::bulk_load_with_capacity(&points, 4);
        assert_eq!(tree.node_capacity(), 4);
        tree.visit_nodes(|node, _| match &node.content {
            NodeContent::Leaf(entries) => {
                for (_, p) in entries {
                    assert!(node.mbb.contains(p, 1e-12));
                }
            }
            NodeContent::Internal(children) => {
                for child in children {
                    assert!(node.mbb.contains(&child.mbb.min, 1e-12));
                    assert!(node.mbb.contains(&child.mbb.max, 1e-12));
                }
            }
        });
    }

    #[test]
    fn node_summaries_cover_every_point_exactly_once_at_leaf_level() {
        let points = random_points(100, 3);
        let tree = RTree::bulk_load(&points);
        let total_in_root = tree
            .node_summaries()
            .first()
            .map(|(_, count)| *count)
            .unwrap();
        assert_eq!(total_in_root, points.len());
    }

    #[test]
    fn capacity_below_two_is_clamped() {
        let points = random_points(10, 5);
        let tree = RTree::bulk_load_with_capacity(&points, 0);
        assert_eq!(tree.node_capacity(), 2);
        let q = Aabb3::anchored_at_origin(Point3::new(1.0, 1.0, 1.0));
        assert_eq!(tree.count_in_box(&q), 10);
    }

    /// Asserts the structural invariants of the tree: every parent MBB
    /// contains its children (points or child boxes), leaf fanout respects
    /// the capacity bound, non-root nodes are non-empty, and `len()` equals
    /// the number of live leaf entries.
    fn assert_structural_invariants(tree: &RTree) {
        let mut live_entries = 0;
        tree.visit_nodes(|node, depth| match &node.content {
            NodeContent::Leaf(entries) => {
                assert!(
                    entries.len() <= tree.node_capacity(),
                    "leaf fanout {} exceeds capacity {}",
                    entries.len(),
                    tree.node_capacity()
                );
                assert!(depth == 0 || !entries.is_empty(), "non-root leaf is empty");
                for (_, p) in entries {
                    assert!(node.mbb.contains(p, 1e-12), "leaf MBB lost a point");
                }
                live_entries += entries.len();
            }
            NodeContent::Internal(children) => {
                assert!(
                    children.len() <= tree.node_capacity(),
                    "internal fanout {} exceeds capacity {}",
                    children.len(),
                    tree.node_capacity()
                );
                assert!(!children.is_empty(), "internal node is empty");
                for child in children {
                    assert!(
                        node.mbb.contains(&child.mbb.min, 1e-12)
                            && node.mbb.contains(&child.mbb.max, 1e-12),
                        "parent MBB does not contain child MBB"
                    );
                }
            }
        });
        assert_eq!(tree.len(), live_entries, "len() diverged from live entries");
    }

    fn linear_report(live: &[(usize, Point3)], query: &Aabb3) -> Vec<usize> {
        let mut out: Vec<usize> = live
            .iter()
            .filter(|(_, p)| query.contains(p, 0.0))
            .map(|(i, _)| *i)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn incremental_inserts_match_linear_scan_and_keep_invariants() {
        let points = random_points(150, 21);
        let mut tree = RTree::bulk_load_with_capacity(&[], 4);
        for (i, p) in points.iter().enumerate() {
            tree.insert(i, *p);
            assert_structural_invariants(&tree);
        }
        assert_eq!(tree.len(), points.len());
        let q = Aabb3::new(Point3::new(0.2, 0.1, 0.3), Point3::new(0.9, 0.8, 0.7));
        assert_eq!(tree.count_in_box(&q), linear_count(&points, &q));
    }

    #[test]
    fn remove_deletes_exactly_one_entry_and_reports_misses() {
        let points = random_points(40, 33);
        let mut tree = RTree::bulk_load_with_capacity(&points, 3);
        assert!(tree.remove(7, &points[7]));
        assert_structural_invariants(&tree);
        assert_eq!(tree.len(), 39);
        // Removing the same index again (or an index never inserted) misses.
        assert!(!tree.remove(7, &points[7]));
        assert!(!tree.remove(999, &Point3::new(0.5, 0.5, 0.5)));
        assert_eq!(tree.len(), 39);
        let everything = Aabb3::anchored_at_origin(Point3::new(1.0, 1.0, 1.0));
        let reported = tree.query_box(&everything);
        assert_eq!(reported.len(), 39);
        assert!(!reported.contains(&7));
    }

    #[test]
    fn draining_a_tree_empties_it() {
        let points = random_points(25, 44);
        let mut tree = RTree::bulk_load_with_capacity(&points, 2);
        for (i, p) in points.iter().enumerate() {
            assert!(tree.remove(i, p), "entry {i} should be removable");
            assert_structural_invariants(&tree);
        }
        assert!(tree.is_empty());
        assert!(tree.root().is_none());
        // The drained tree accepts fresh inserts.
        tree.insert(0, points[0]);
        assert_eq!(tree.len(), 1);
        assert_structural_invariants(&tree);
    }

    #[test]
    fn duplicate_points_split_evenly_and_keep_the_tree_shallow() {
        // Identical points tie every split criterion; the minimum-fill rule
        // and cardinality tie-break must still produce near-even splits, not
        // (capacity, 1) slivers that degenerate the tree into a list.
        let p = Point3::new(0.5, 0.5, 0.5);
        let mut tree = RTree::bulk_load_with_capacity(&[], 4);
        for i in 0..64 {
            tree.insert(i, p);
            assert_structural_invariants(&tree);
        }
        let mut max_depth = 0;
        let mut min_leaf = usize::MAX;
        tree.visit_nodes(|node, depth| {
            max_depth = max_depth.max(depth);
            if let NodeContent::Leaf(entries) = &node.content {
                min_leaf = min_leaf.min(entries.len());
            }
        });
        // A balanced capacity-4 tree over 64 entries is ~4 levels deep; the
        // sliver-split pathology would exceed 16. Leaves must respect the
        // ~40 % minimum fill produced by the split.
        assert!(max_depth <= 8, "tree degenerated to depth {max_depth}");
        assert!(min_leaf >= 2, "sliver leaf of {min_leaf} entries");
        assert_eq!(
            tree.query_box(&Aabb3::from_point(p)).len(),
            64,
            "all duplicates must stay reachable"
        );
    }

    #[test]
    fn bulk_load_entries_keeps_caller_indices() {
        let points = random_points(30, 55);
        let entries: Vec<(usize, Point3)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i * 10 + 3, *p))
            .collect();
        let tree = RTree::bulk_load_entries(entries.clone(), 4);
        assert_structural_invariants(&tree);
        let everything = Aabb3::anchored_at_origin(Point3::new(1.0, 1.0, 1.0));
        let mut expected: Vec<usize> = entries.iter().map(|(i, _)| *i).collect();
        expected.sort_unstable();
        assert_eq!(tree.query_box(&everything), expected);
    }

    proptest! {
        // Satellite invariant suite: random interleavings of insert/remove
        // must preserve the structural invariants and stay query-equivalent
        // to a linear scan after EVERY mutation. The vendored proptest
        // harness derives its RNG seed deterministically from the test name,
        // so CI runs are reproducible.
        #[test]
        fn churned_tree_keeps_invariants_and_query_parity(
            initial in proptest::collection::vec(
                (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..40),
            ops in proptest::collection::vec(
                (0.0_f64..1.0, (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0)), 1..60),
            capacity in 2_usize..8,
        ) {
            let mut live: Vec<(usize, Point3)> = initial
                .iter()
                .enumerate()
                .map(|(i, &(x, y, z))| (i, Point3::new(x, y, z)))
                .collect();
            let mut tree = RTree::bulk_load_entries(live.clone(), capacity);
            let mut next_idx = live.len();
            for &(selector, (x, y, z)) in &ops {
                if selector < 0.55 || live.is_empty() {
                    let p = Point3::new(x, y, z);
                    tree.insert(next_idx, p);
                    live.push((next_idx, p));
                    next_idx += 1;
                } else {
                    let victim = ((x * live.len() as f64) as usize).min(live.len() - 1);
                    let (idx, p) = live.swap_remove(victim);
                    prop_assert!(tree.remove(idx, &p));
                }
                assert_structural_invariants(&tree);
                prop_assert_eq!(tree.len(), live.len());
                let query = Aabb3::anchored_at_origin(Point3::new(y, z, x));
                prop_assert_eq!(tree.query_box(&query), linear_report(&live, &query));
                prop_assert_eq!(
                    tree.count_in_box(&query),
                    linear_report(&live, &query).len()
                );
            }
        }

        #[test]
        fn count_matches_linear_scan_for_random_boxes(
            raw in proptest::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..120),
            corner_a in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
            corner_b in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
            capacity in 2_usize..10,
        ) {
            let points: Vec<Point3> = raw.iter().map(|&(x, y, z)| Point3::new(x, y, z)).collect();
            let tree = RTree::bulk_load_with_capacity(&points, capacity);
            let query = Aabb3::new(
                Point3::new(corner_a.0, corner_a.1, corner_a.2),
                Point3::new(corner_b.0, corner_b.1, corner_b.2),
            );
            prop_assert_eq!(tree.count_in_box(&query), linear_count(&points, &query));
            prop_assert_eq!(tree.query_box(&query).len(), linear_count(&points, &query));
        }
    }
}
