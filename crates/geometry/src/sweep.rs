//! Sweep-line event lists.
//!
//! `ADPaR-Exact` (paper §4.1) discretizes the continuous search space by
//! sweeping imaginary planes through the sorted strategy coordinates: "a
//! sweep line is an imaginary vertical line which is swept across the plane
//! rightwards … ADPaR-Exact sweeps the line as it encounters strategies, in
//! order to discretize the sweep". This module provides the sorted event
//! lists (value, item index, axis) that back those sweeps, corresponding to
//! the paper's `R` / `I` / `D` arrays (Table 4).

use serde::{Deserialize, Serialize};

use crate::point::{Axis, Point3};

/// A single sweep event: the position of one item along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepEvent {
    /// Coordinate value at which the sweep plane meets the item.
    pub value: f64,
    /// Index of the item (strategy) this event belongs to.
    pub item: usize,
    /// The axis being swept.
    pub axis: Axis,
}

/// A sorted list of sweep events, optionally spanning several axes.
///
/// Events are ordered by ascending value; ties are broken by axis then item
/// index so the order is deterministic (the paper's Table 4 lists ties in
/// exactly this strategy-index order).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SweepList {
    events: Vec<SweepEvent>,
}

impl SweepList {
    /// Builds a single-axis sweep list from the coordinates of `points`
    /// along `axis`.
    #[must_use]
    pub fn along_axis(points: &[Point3], axis: Axis) -> Self {
        let mut events: Vec<SweepEvent> = points
            .iter()
            .enumerate()
            .map(|(item, p)| SweepEvent {
                value: p.coord(axis),
                item,
                axis,
            })
            .collect();
        sort_events(&mut events);
        Self { events }
    }

    /// Builds the combined three-axis sweep list over all coordinates of all
    /// points — the paper's list `R` with companion arrays `I` (item index)
    /// and `D` (axis).
    #[must_use]
    pub fn all_axes(points: &[Point3]) -> Self {
        let mut events = Vec::with_capacity(points.len() * 3);
        for axis in Axis::ALL {
            for (item, p) in points.iter().enumerate() {
                events.push(SweepEvent {
                    value: p.coord(axis),
                    item,
                    axis,
                });
            }
        }
        sort_events(&mut events);
        Self { events }
    }

    /// Builds a sweep list from raw `(value, item, axis)` triples.
    #[must_use]
    pub fn from_events(mut events: Vec<SweepEvent>) -> Self {
        sort_events(&mut events);
        Self { events }
    }

    /// The sorted events.
    #[must_use]
    pub fn events(&self) -> &[SweepEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event at position `cursor`, if any.
    #[must_use]
    pub fn at(&self, cursor: usize) -> Option<&SweepEvent> {
        self.events.get(cursor)
    }

    /// The value of the `k`-th event (0-based `k-1`) along the list — used to
    /// initialize the sweep at the `k`-th smallest coordinate, per Lemma 1 of
    /// the paper ("to cover k strategies, d′ needs to be initialized at least
    /// to the k-th smallest values on each parameter").
    #[must_use]
    pub fn kth_value(&self, k: usize) -> Option<f64> {
        if k == 0 {
            return None;
        }
        self.events.get(k - 1).map(|e| e.value)
    }

    /// Iterates over the distinct values in ascending order (collapsing
    /// duplicates within `eps`). These are the only candidate positions an
    /// exact sweep needs to consider.
    #[must_use]
    pub fn distinct_values(&self, eps: f64) -> Vec<f64> {
        let mut values = Vec::with_capacity(self.events.len());
        for event in &self.events {
            if values
                .last()
                .is_none_or(|&last: &f64| (event.value - last).abs() > eps)
            {
                values.push(event.value);
            }
        }
        values
    }
}

fn sort_events(events: &mut [SweepEvent]) {
    events.sort_by(|a, b| {
        a.value
            .total_cmp(&b.value)
            .then(a.axis.index().cmp(&b.axis.index()))
            .then(a.item.cmp(&b.item))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_points() -> Vec<Point3> {
        vec![
            Point3::new(0.3, 0.05, 0.0),
            Point3::new(0.05, 0.13, 0.0),
            Point3::new(0.0, 0.3, 0.0),
            Point3::new(0.0, 0.38, 0.0),
        ]
    }

    #[test]
    fn single_axis_sweep_is_sorted() {
        let list = SweepList::along_axis(&sample_points(), Axis::X);
        let values: Vec<f64> = list.events().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![0.0, 0.0, 0.05, 0.3]);
        // Ties broken by item index.
        assert_eq!(list.events()[0].item, 2);
        assert_eq!(list.events()[1].item, 3);
    }

    #[test]
    fn all_axes_sweep_has_three_events_per_point() {
        let points = sample_points();
        let list = SweepList::all_axes(&points);
        assert_eq!(list.len(), points.len() * 3);
        assert!(!list.is_empty());
        // First events are the zero latencies (Z axis) and zero X coords.
        assert_eq!(list.events()[0].value, 0.0);
    }

    #[test]
    fn kth_value_matches_sorted_order() {
        let list = SweepList::along_axis(&sample_points(), Axis::Y);
        assert_eq!(list.kth_value(0), None);
        assert_eq!(list.kth_value(1), Some(0.05));
        assert_eq!(list.kth_value(3), Some(0.3));
        assert_eq!(list.kth_value(5), None);
    }

    #[test]
    fn distinct_values_collapse_duplicates() {
        let list = SweepList::along_axis(&sample_points(), Axis::Z);
        assert_eq!(list.distinct_values(1e-9), vec![0.0]);
        let list = SweepList::along_axis(&sample_points(), Axis::X);
        assert_eq!(list.distinct_values(1e-9), vec![0.0, 0.05, 0.3]);
    }

    #[test]
    fn empty_input_produces_empty_list() {
        let list = SweepList::all_axes(&[]);
        assert!(list.is_empty());
        assert_eq!(list.at(0), None);
        assert!(list.distinct_values(1e-9).is_empty());
    }

    proptest! {
        #[test]
        fn events_are_always_sorted(
            raw in proptest::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..32),
        ) {
            let points: Vec<Point3> = raw.iter().map(|&(x, y, z)| Point3::new(x, y, z)).collect();
            let list = SweepList::all_axes(&points);
            for pair in list.events().windows(2) {
                prop_assert!(pair[0].value <= pair[1].value + 1e-12);
            }
            prop_assert_eq!(list.len(), points.len() * 3);
        }

        #[test]
        fn distinct_values_are_strictly_increasing(
            raw in proptest::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..32),
        ) {
            let points: Vec<Point3> = raw.iter().map(|&(x, y, z)| Point3::new(x, y, z)).collect();
            let list = SweepList::all_axes(&points);
            let distinct = list.distinct_values(1e-9);
            for pair in distinct.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }
}
