//! Axis-aligned bounding boxes in 3-D.

use serde::{Deserialize, Serialize};

use crate::point::{Axis, Point3};

/// An axis-aligned box defined by its component-wise minimum and maximum
/// corners. In StratRec a deployment request (after normalization) is the box
/// `[0, d.quality] × [0, d.cost] × [0, d.latency]`, i.e. an origin-anchored
/// box whose *top-right corner* is the request's parameter point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb3 {
    /// Component-wise minimum corner.
    pub min: Point3,
    /// Component-wise maximum corner.
    pub max: Point3,
}

impl Aabb3 {
    /// Creates a box from two corners; the corners are re-ordered
    /// component-wise so the result is always well-formed.
    #[must_use]
    pub fn new(a: Point3, b: Point3) -> Self {
        Self {
            min: a.component_min(&b),
            max: a.component_max(&b),
        }
    }

    /// The origin-anchored box whose top-right corner is `corner` — the shape
    /// of a normalized deployment request.
    #[must_use]
    pub fn anchored_at_origin(corner: Point3) -> Self {
        Self::new(Point3::origin(), corner)
    }

    /// The degenerate box containing exactly one point.
    #[must_use]
    pub fn from_point(p: Point3) -> Self {
        Self { min: p, max: p }
    }

    /// The smallest box containing all `points`. Returns `None` for an empty
    /// slice.
    #[must_use]
    pub fn bounding(points: &[Point3]) -> Option<Self> {
        let (first, rest) = points.split_first()?;
        let mut aabb = Self::from_point(*first);
        for p in rest {
            aabb = aabb.expanded_to_include(*p);
        }
        Some(aabb)
    }

    /// The top-right (component-wise maximum) corner of the box.
    #[must_use]
    pub fn top_right(&self) -> Point3 {
        self.max
    }

    /// Whether `p` lies inside the box (inclusive, within `eps`).
    #[must_use]
    pub fn contains(&self, p: &Point3, eps: f64) -> bool {
        p.x >= self.min.x - eps
            && p.x <= self.max.x + eps
            && p.y >= self.min.y - eps
            && p.y <= self.max.y + eps
            && p.z >= self.min.z - eps
            && p.z <= self.max.z + eps
    }

    /// Whether two boxes intersect (inclusive boundaries).
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
            && self.min.z <= other.max.z
            && other.min.z <= self.max.z
    }

    /// Smallest box containing both boxes.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        Self {
            min: self.min.component_min(&other.min),
            max: self.max.component_max(&other.max),
        }
    }

    /// Returns the box grown just enough to include `p`.
    #[must_use]
    pub fn expanded_to_include(&self, p: Point3) -> Self {
        Self {
            min: self.min.component_min(&p),
            max: self.max.component_max(&p),
        }
    }

    /// Extent of the box along one axis.
    #[must_use]
    pub fn extent(&self, axis: Axis) -> f64 {
        self.max.coord(axis) - self.min.coord(axis)
    }

    /// Volume of the box (product of the three extents).
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.extent(Axis::X) * self.extent(Axis::Y) * self.extent(Axis::Z)
    }

    /// Surface-area style margin (sum of extents) used by R-tree split
    /// heuristics.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.extent(Axis::X) + self.extent(Axis::Y) + self.extent(Axis::Z)
    }

    /// The centre point of the box.
    #[must_use]
    pub fn center(&self) -> Point3 {
        Point3::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
            0.5 * (self.min.z + self.max.z),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn corners_are_reordered() {
        let b = Aabb3::new(Point3::new(1.0, 0.0, 5.0), Point3::new(0.0, 2.0, 3.0));
        assert_eq!(b.min, Point3::new(0.0, 0.0, 3.0));
        assert_eq!(b.max, Point3::new(1.0, 2.0, 5.0));
    }

    #[test]
    fn origin_anchored_box_models_a_request() {
        let request = Point3::new(0.6, 0.2, 0.28);
        let b = Aabb3::anchored_at_origin(request);
        assert!(b.contains(&Point3::new(0.5, 0.1, 0.28), 1e-12));
        assert!(!b.contains(&Point3::new(0.7, 0.1, 0.28), 1e-12));
        assert_eq!(b.top_right(), request);
    }

    #[test]
    fn bounding_box_of_points() {
        let points = [
            Point3::new(0.5, 0.25, 0.28),
            Point3::new(0.25, 0.33, 0.28),
            Point3::new(0.2, 0.5, 0.14),
        ];
        let b = Aabb3::bounding(&points).unwrap();
        assert_eq!(b.min, Point3::new(0.2, 0.25, 0.14));
        assert_eq!(b.max, Point3::new(0.5, 0.5, 0.28));
        assert!(Aabb3::bounding(&[]).is_none());
    }

    #[test]
    fn volume_margin_center_and_extent() {
        let b = Aabb3::new(Point3::origin(), Point3::new(2.0, 3.0, 4.0));
        assert!((b.volume() - 24.0).abs() < 1e-12);
        assert!((b.margin() - 9.0).abs() < 1e-12);
        assert_eq!(b.center(), Point3::new(1.0, 1.5, 2.0));
        assert!((b.extent(Axis::Y) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_and_union() {
        let a = Aabb3::new(Point3::origin(), Point3::new(1.0, 1.0, 1.0));
        let b = Aabb3::new(Point3::new(0.5, 0.5, 0.5), Point3::new(2.0, 2.0, 2.0));
        let c = Aabb3::new(Point3::new(3.0, 3.0, 3.0), Point3::new(4.0, 4.0, 4.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!(u.min, Point3::origin());
        assert_eq!(u.max, Point3::new(4.0, 4.0, 4.0));
    }

    proptest! {
        #[test]
        fn union_contains_both_boxes(
            coords in proptest::collection::vec(0.0_f64..1.0, 12..=12),
        ) {
            let a = Aabb3::new(
                Point3::new(coords[0], coords[1], coords[2]),
                Point3::new(coords[3], coords[4], coords[5]),
            );
            let b = Aabb3::new(
                Point3::new(coords[6], coords[7], coords[8]),
                Point3::new(coords[9], coords[10], coords[11]),
            );
            let u = a.union(&b);
            prop_assert!(u.contains(&a.min, 1e-12) && u.contains(&a.max, 1e-12));
            prop_assert!(u.contains(&b.min, 1e-12) && u.contains(&b.max, 1e-12));
            prop_assert!(u.volume() + 1e-12 >= a.volume().max(b.volume()));
        }

        #[test]
        fn bounding_box_contains_all_points(
            raw in proptest::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 1..32),
        ) {
            let points: Vec<Point3> = raw.iter().map(|&(x, y, z)| Point3::new(x, y, z)).collect();
            let b = Aabb3::bounding(&points).unwrap();
            for p in &points {
                prop_assert!(b.contains(p, 1e-12));
            }
        }

        #[test]
        fn expanded_box_contains_new_point(
            bx in 0.0_f64..1.0, by in 0.0_f64..1.0, bz in 0.0_f64..1.0,
            px in -1.0_f64..2.0, py in -1.0_f64..2.0, pz in -1.0_f64..2.0,
        ) {
            let b = Aabb3::anchored_at_origin(Point3::new(bx, by, bz));
            let p = Point3::new(px, py, pz);
            let e = b.expanded_to_include(p);
            prop_assert!(e.contains(&p, 1e-12));
            prop_assert!(e.contains(&b.min, 1e-12) && e.contains(&b.max, 1e-12));
        }
    }
}
