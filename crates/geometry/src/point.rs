//! Points in the 3-dimensional deployment-parameter space.

use serde::{Deserialize, Serialize};

/// One of the three coordinate axes of the parameter space.
///
/// In StratRec the axes carry the meaning *quality* (after the
/// `1 − quality` inversion), *cost* and *latency*, but this crate treats them
/// as anonymous coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// First coordinate.
    X,
    /// Second coordinate.
    Y,
    /// Third coordinate.
    Z,
}

impl Axis {
    /// All three axes, in order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The index of the axis (0, 1 or 2).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

/// A point in 3-D space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// First coordinate.
    pub x: f64,
    /// Second coordinate.
    pub y: f64,
    /// Third coordinate.
    pub z: f64,
}

impl Point3 {
    /// Creates a point from its three coordinates.
    #[must_use]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The origin `(0, 0, 0)`.
    #[must_use]
    pub fn origin() -> Self {
        Self::default()
    }

    /// Returns the coordinate along the given axis.
    #[must_use]
    pub fn coord(&self, axis: Axis) -> f64 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Returns a copy with the coordinate along `axis` replaced by `value`.
    #[must_use]
    pub fn with_coord(mut self, axis: Axis, value: f64) -> Self {
        match axis {
            Axis::X => self.x = value,
            Axis::Y => self.y = value,
            Axis::Z => self.z = value,
        }
        self
    }

    /// The coordinates as an array `[x, y, z]`.
    #[must_use]
    pub fn to_array(&self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Component-wise minimum of two points.
    #[must_use]
    pub fn component_min(&self, other: &Self) -> Self {
        Self::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum of two points.
    #[must_use]
    pub fn component_max(&self, other: &Self) -> Self {
        Self::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Euclidean (ℓ2) distance to another point. This is the objective of
    /// the ADPaR problem (Equation 3 of the paper).
    #[must_use]
    pub fn distance(&self, other: &Self) -> f64 {
        self.squared_distance(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed).
    #[must_use]
    pub fn squared_distance(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Whether this point is *covered by* `bound`, i.e. every coordinate of
    /// `self` is ≤ the corresponding coordinate of `bound` (within `eps`).
    ///
    /// After StratRec's normalization (smaller is better on every axis) a
    /// strategy point is admissible for a deployment exactly when it is
    /// covered by the deployment's parameter point.
    #[must_use]
    pub fn is_covered_by(&self, bound: &Self, eps: f64) -> bool {
        self.x <= bound.x + eps && self.y <= bound.y + eps && self.z <= bound.z + eps
    }

    /// Whether this point dominates `other` in the Pareto sense: no
    /// coordinate is larger and at least one is strictly smaller.
    #[must_use]
    pub fn dominates(&self, other: &Self, eps: f64) -> bool {
        let no_worse =
            self.x <= other.x + eps && self.y <= other.y + eps && self.z <= other.z + eps;
        let strictly_better =
            self.x < other.x - eps || self.y < other.y - eps || self.z < other.z - eps;
        no_worse && strictly_better
    }

    /// Whether all coordinates are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl From<[f64; 3]> for Point3 {
    fn from(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [f64; 3] {
    fn from(p: Point3) -> Self {
        p.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coordinates_round_trip_through_axes() {
        let p = Point3::new(0.1, 0.2, 0.3);
        assert_eq!(p.coord(Axis::X), 0.1);
        assert_eq!(p.coord(Axis::Y), 0.2);
        assert_eq!(p.coord(Axis::Z), 0.3);
        let q = p.with_coord(Axis::Y, 0.9);
        assert_eq!(q.coord(Axis::Y), 0.9);
        assert_eq!(q.coord(Axis::X), 0.1);
        assert_eq!(Axis::Z.index(), 2);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 2.0, 2.0);
        assert!((a.distance(&b) - 3.0).abs() < 1e-12);
        assert!((a.squared_distance(&b) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_componentwise() {
        let strategy = Point3::new(0.5, 0.25, 0.28);
        let request = Point3::new(0.6, 0.83, 0.28);
        assert!(strategy.is_covered_by(&request, 1e-9));
        assert!(!request.is_covered_by(&strategy, 1e-9));
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = Point3::new(0.2, 0.2, 0.2);
        let b = Point3::new(0.2, 0.2, 0.2);
        assert!(!a.dominates(&b, 1e-9));
        let c = Point3::new(0.2, 0.1, 0.2);
        assert!(c.dominates(&a, 1e-9));
        assert!(!a.dominates(&c, 1e-9));
    }

    #[test]
    fn min_max_and_conversions() {
        let a = Point3::new(0.1, 0.9, 0.5);
        let b = Point3::new(0.3, 0.2, 0.6);
        assert_eq!(a.component_min(&b), Point3::new(0.1, 0.2, 0.5));
        assert_eq!(a.component_max(&b), Point3::new(0.3, 0.9, 0.6));
        let arr: [f64; 3] = a.into();
        assert_eq!(Point3::from(arr), a);
        assert!(a.is_finite());
        assert!(!Point3::new(f64::NAN, 0.0, 0.0).is_finite());
    }

    proptest! {
        #[test]
        fn distance_is_symmetric_and_nonnegative(
            ax in -10.0_f64..10.0, ay in -10.0_f64..10.0, az in -10.0_f64..10.0,
            bx in -10.0_f64..10.0, by in -10.0_f64..10.0, bz in -10.0_f64..10.0,
        ) {
            let a = Point3::new(ax, ay, az);
            let b = Point3::new(bx, by, bz);
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
            prop_assert!(a.distance(&b) >= 0.0);
            prop_assert!(a.distance(&a) < 1e-12);
        }

        #[test]
        fn triangle_inequality(
            coords in proptest::collection::vec(-5.0_f64..5.0, 9..=9),
        ) {
            let a = Point3::new(coords[0], coords[1], coords[2]);
            let b = Point3::new(coords[3], coords[4], coords[5]);
            let c = Point3::new(coords[6], coords[7], coords[8]);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn component_max_covers_both_points(
            ax in 0.0_f64..1.0, ay in 0.0_f64..1.0, az in 0.0_f64..1.0,
            bx in 0.0_f64..1.0, by in 0.0_f64..1.0, bz in 0.0_f64..1.0,
        ) {
            let a = Point3::new(ax, ay, az);
            let b = Point3::new(bx, by, bz);
            let m = a.component_max(&b);
            prop_assert!(a.is_covered_by(&m, 1e-12));
            prop_assert!(b.is_covered_by(&m, 1e-12));
        }
    }
}
