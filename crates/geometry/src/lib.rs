//! Computational-geometry substrate for StratRec.
//!
//! The ADPaR problem of the paper is solved geometrically: after
//! normalization every deployment strategy is a point in a 3-dimensional
//! parameter space (quality, cost, latency) and an alternative deployment
//! parameter is the corner of an axis-parallel box that must *cover* at least
//! `k` strategy points while staying as close as possible to the original
//! request. `ADPaR-Exact` sweeps discretized candidate planes through this
//! space, and the paper's `Baseline3` indexes the strategy points with an
//! R-tree and returns minimum-bounding-box corners.
//!
//! This crate provides those geometric building blocks with no knowledge of
//! crowdsourcing semantics:
//!
//! * [`point::Point3`] — points with dominance/coverage tests and distances.
//! * [`aabb::Aabb3`] — axis-aligned boxes with containment, union, expansion.
//! * [`sweep`] — sorted sweep-line event lists over one coordinate.
//! * [`rtree`] — a bulk-loaded (STR) R-tree over 3-D points supporting range
//!   counting, range reporting and bounding-box traversal.

#![forbid(unsafe_code)]

pub mod aabb;
pub mod point;
pub mod rtree;
pub mod sweep;

pub use aabb::Aabb3;
pub use point::{Axis, Point3};
pub use rtree::{RTree, DEFAULT_NODE_CAPACITY};
pub use sweep::{SweepEvent, SweepList};
