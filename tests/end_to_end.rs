//! Integration tests spanning the whole workspace: platform simulation →
//! model fitting → batch recommendation → alternative-parameter
//! recommendation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stratrec::core::batch::BatchObjective;
use stratrec::core::model::{
    all_dimension_combinations, DeploymentParameters, DeploymentRequest, Strategy, TaskType,
};
use stratrec::core::modeling::ModelLibrary;
use stratrec::core::prelude::*;
use stratrec::core::stratrec::StratRecConfig;
use stratrec::platform::execution::StrategyExecutor;
use stratrec::platform::experiment::CalibrationExperiment;
use stratrec::workload::scenario::{AdparScenario, BatchScenario, ParameterDistribution};
use stratrec::workload::{generate_models, generate_requests, generate_strategies};

/// The full pipeline of the paper's Figure 1, driven by simulated platform
/// data: estimate availability, fit models, triage a batch, and produce
/// alternatives for whatever cannot be served.
#[test]
fn full_pipeline_from_simulation_to_recommendations() {
    let task = TaskType::SentenceTranslation;
    let calibration = CalibrationExperiment::with_seed(11);

    // Availability from the simulated deployment windows.
    let study = calibration.availability_study(task);
    let observations: Vec<f64> = study
        .iter()
        .flat_map(|(_, _, est)| est.observations.clone())
        .collect();
    let availability = AvailabilityPdf::from_observations(&observations).unwrap();
    assert!(availability.expectation().value() > 0.0);

    // Strategy set with fitted models.
    let expected = availability.expectation();
    let mut strategies = Vec::new();
    let mut models = ModelLibrary::new();
    for (idx, (structure, organization, style)) in all_dimension_combinations().iter().enumerate() {
        let truth = StrategyExecutor::ground_truth_model(task, *structure, *organization, *style);
        let params = truth.estimate_parameters(expected);
        let strategy = Strategy::new(idx as u64, *structure, *organization, *style, params);
        models.insert(strategy.id, truth);
        strategies.push(strategy);
    }

    // A mixed batch: some requests realistic, some impossible.
    let requests = vec![
        DeploymentRequest::new(0, task, DeploymentParameters::clamped(0.7, 0.9, 0.9)),
        DeploymentRequest::new(1, task, DeploymentParameters::clamped(0.8, 0.8, 0.8)),
        DeploymentRequest::new(2, task, DeploymentParameters::clamped(0.99, 0.05, 0.05)),
    ];
    let layer = StratRec::new(StratRecConfig {
        k: 3,
        objective: BatchObjective::Throughput,
        aggregation: AggregationMode::Max,
    });
    let report = layer
        .process_batch(&requests, &strategies, &models, &availability)
        .unwrap();

    // Every request is accounted for exactly once.
    assert_eq!(
        report.batch.satisfied.len() + report.batch.unsatisfied.len(),
        requests.len()
    );
    // The impossible request is not satisfied directly…
    assert!(report.batch.unsatisfied.contains(&2));
    // …but gets feasible alternative parameters admitting k strategies.
    let alt = report
        .alternatives
        .iter()
        .find(|a| a.request_index == 2)
        .unwrap();
    let solution = alt.solution.as_ref().unwrap();
    assert!(solution.strategy_indices.len() >= 3);
    for &idx in &solution.strategy_indices {
        assert!(strategies[idx].params.satisfies(&solution.alternative));
    }
    // Satisfied requests stay within the workforce budget.
    assert!(report.batch.workforce_used <= report.availability.value() + 1e-9);
}

/// Synthetic workloads round-trip through the batch engine without violating
/// the workforce budget, for both distributions and both objectives.
#[test]
fn synthetic_batch_respects_budget_for_all_configurations() {
    for distribution in ParameterDistribution::ALL {
        for objective in [BatchObjective::Throughput, BatchObjective::Payoff] {
            let instance = BatchScenario {
                strategy_count: 300,
                batch_size: 20,
                k: 5,
                availability: 0.4,
                distribution,
                seed: 99,
            }
            .materialize();
            let outcome = BatchStrat::new(objective, AggregationMode::Sum)
                .recommend_with_models(
                    &instance.requests,
                    &instance.strategies,
                    &instance.models,
                    5,
                    instance.availability,
                )
                .unwrap();
            assert!(outcome.workforce_used <= instance.availability.value() + 1e-9);
            for rec in &outcome.satisfied {
                assert_eq!(rec.strategy_indices.len(), 5);
                // Every recommended strategy really satisfies the request.
                for &s in &rec.strategy_indices {
                    assert!(instance.strategies[s].satisfies(&instance.requests[rec.request_index]));
                }
            }
        }
    }
}

/// ADPaR solvers agree on feasibility across a synthetic scenario, and the
/// exact solver is never beaten.
#[test]
fn adpar_solvers_are_consistent_on_synthetic_scenarios() {
    use stratrec::core::adpar::{AdparBaseline2, AdparBaseline3};
    for seed in 0..5 {
        let instance = AdparScenario {
            strategy_count: 60,
            k: 6,
            seed,
            ..AdparScenario::default()
        }
        .materialize();
        let problem = AdparProblem::new(&instance.request, &instance.strategies, instance.k);
        let exact = AdparExact.solve(&problem).unwrap();
        let b2 = AdparBaseline2.solve(&problem).unwrap();
        let b3 = AdparBaseline3::default().solve(&problem).unwrap();
        assert!(exact.distance <= b2.distance + 1e-9);
        assert!(exact.distance <= b3.distance + 1e-9);
        assert!(exact.strategy_indices.len() >= instance.k);
    }
}

/// The umbrella crate's re-exports expose a coherent API surface: workload
/// generators produce inputs the core accepts directly.
#[test]
fn umbrella_reexports_compose() {
    let mut rng = StdRng::seed_from_u64(5);
    let strategies = generate_strategies(50, ParameterDistribution::Uniform, &mut rng);
    let models = generate_models(&strategies, &mut rng);
    let requests = generate_requests(5, &mut rng);
    let outcome = BatchStrat::default()
        .recommend_with_models(
            &requests,
            &strategies,
            &models,
            3,
            WorkerAvailability::new(0.9).unwrap(),
        )
        .unwrap();
    assert_eq!(
        outcome.satisfied.len() + outcome.unsatisfied.len(),
        requests.len()
    );
}
