//! Property-based churn parity: random interleavings of insert / retire /
//! compact / eligibility-query against a shadow linear scan.
//!
//! Reenactment-style replay: every generated op sequence is applied in
//! lockstep to a shadow `Vec<(slot, Strategy)>` (ground truth, scanned
//! linearly) and to catalogs running three rebuild policies — merge always
//! (threshold 0), a small finite threshold, and never merge (∞). A
//! `compact()` op renumbers the shadow through the returned `SlotRemap`
//! (all three policies must return the same remap — the live set is
//! identical). After **every** step the catalogs' indexed answers must be
//! identical to the shadow's, so a divergence pins the exact churn prefix
//! that caused it. The vendored proptest harness seeds its RNG
//! deterministically from the test name, so CI replays the same sequences
//! on every run (`PROPTEST_CASES=256` in the workflow).
//!
//! The replay also carries the **delta-maintained derived state** through
//! the same op stream: per policy, a standing-batch workforce matrix and
//! two aggregation caches (sum- and max-mode) subscribe to the catalog's
//! delta feed and absorb every step through `take_delta` → `apply_delta` →
//! `AggregationCache::repair`, interleaved with `compact()`. After every
//! step the incrementally maintained matrix must be **bit-identical** to a
//! fresh `compute_with_catalog` and each cache to a fresh `aggregate` over
//! the updated matrix.

use proptest::prelude::*;
use stratrec::core::adpar::{AdparBruteForce, AdparExact, AdparProblem, AdparSolver, SolveScratch};
use stratrec::core::catalog::{RebuildPolicy, ShardPlan, StrategyCatalog};
use stratrec::core::model::{DeploymentParameters, DeploymentRequest, Strategy, TaskType};
use stratrec::core::modeling::{ModelLibrary, StrategyModel};
use stratrec::core::workforce::{
    AggregationCache, AggregationMode, EligibilityRule, ShardedAggregationCache, WorkforceMatrix,
};
use stratrec::geometry::Axis;

const POLICIES: [RebuildPolicy; 3] = [
    RebuildPolicy::always(),
    RebuildPolicy::threshold(4),
    RebuildPolicy::never(),
];

/// The shadow's eligible slots for `probe`, ascending (the shadow list is
/// kept in slot order).
fn shadow_eligible(shadow: &[(usize, Strategy)], probe: &DeploymentParameters) -> Vec<usize> {
    shadow
        .iter()
        .filter(|(_, s)| s.params.satisfies(probe))
        .map(|(slot, _)| *slot)
        .collect()
}

/// The shadow's slots sorted ascending by `(normalized coordinate, slot)` —
/// the ground truth for the catalog's pre-sorted axis orders.
fn shadow_axis_order(shadow: &[(usize, Strategy)], axis: Axis) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = shadow
        .iter()
        .map(|(slot, s)| (s.to_normalized_point().coord(axis), *slot))
        .collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keyed.into_iter().map(|(_, slot)| slot).collect()
}

/// Deterministic per-strategy model so the replayed matrices carry a real
/// mix of finite and infinite cells with id-distinct values.
fn model_for(id: u64) -> StrategyModel {
    let alpha = 0.4 + ((id * 31) % 47) as f64 / 100.0;
    StrategyModel::uniform(alpha, 1.0 - alpha)
}

/// The standing deployment-request batch whose matrix rows the replay
/// maintains incrementally (one loose, one mid, one strict request).
fn standing_requests() -> Vec<DeploymentRequest> {
    [(0.05, 0.95, 0.95), (0.55, 0.6, 0.65), (0.85, 0.35, 0.3)]
        .iter()
        .enumerate()
        .map(|(i, &(q, c, l))| {
            DeploymentRequest::new(
                i as u64,
                TaskType::SentenceTranslation,
                DeploymentParameters::clamped(q, c, l),
            )
        })
        .collect()
}

/// Per-policy delta-maintained derived state: the standing-batch matrix and
/// its sum-/max-mode aggregation caches, fed by one delta subscription.
struct MaintainedState {
    subscription: stratrec::core::catalog::DeltaSubscription,
    matrix: WorkforceMatrix,
    cache_sum: AggregationCache,
    cache_max: AggregationCache,
}

const MAINTAINED_K: usize = 2;

impl MaintainedState {
    fn new(
        catalog: &mut StrategyCatalog,
        requests: &[DeploymentRequest],
        models: &ModelLibrary,
    ) -> Self {
        let matrix = WorkforceMatrix::compute_with_catalog(
            requests,
            catalog,
            models,
            EligibilityRule::StrategyParameters,
        )
        .expect("every replayed strategy has a model");
        let mut cache_sum = AggregationCache::new(MAINTAINED_K, AggregationMode::Sum);
        let mut cache_max = AggregationCache::new(MAINTAINED_K, AggregationMode::Max);
        cache_sum.prime(&matrix);
        cache_max.prime(&matrix);
        let subscription = catalog.subscribe_delta();
        Self {
            subscription,
            matrix,
            cache_sum,
            cache_max,
        }
    }
}

proptest! {
    #[test]
    fn churn_parity_across_rebuild_thresholds(
        initial in proptest::collection::vec(
            (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..30),
        ops in proptest::collection::vec(
            (0.0_f64..1.0, (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0)), 1..70),
    ) {
        let seed: Vec<Strategy> = initial
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect();
        let mut shadow: Vec<(usize, Strategy)> =
            seed.iter().cloned().enumerate().collect();
        let mut catalogs: Vec<StrategyCatalog> = POLICIES
            .iter()
            .map(|&policy| StrategyCatalog::with_policy(seed.clone(), policy))
            .collect();
        let mut next_id = seed.len() as u64;

        // Delta-maintained derived state, carried through the same op
        // stream: a model per strategy (extended on every insert), the
        // standing batch, and per-policy matrix + caches + subscription.
        let mut models =
            ModelLibrary::from_pairs(seed.iter().map(|s| (s.id, model_for(s.id.0))));
        let requests = standing_requests();
        let mut maintained: Vec<MaintainedState> = catalogs
            .iter_mut()
            .map(|catalog| MaintainedState::new(catalog, &requests, &models))
            .collect();
        let mut model_buf = Vec::new();

        for &(selector, (a, b, c)) in &ops {
            // Decide the op: ~42 % insert, ~23 % retire, ~8 % compact,
            // ~27 % pure query.
            if selector < 0.42 {
                let strategy =
                    Strategy::from_params(next_id, DeploymentParameters::clamped(a, b, c));
                models.insert(strategy.id, model_for(next_id));
                next_id += 1;
                let mut slots = Vec::new();
                for catalog in &mut catalogs {
                    slots.push(catalog.insert(strategy.clone()));
                }
                // Every policy allocates the same stable slot number.
                prop_assert!(slots.windows(2).all(|w| w[0] == w[1]));
                shadow.push((slots[0], strategy));
            } else if selector < 0.65 && !shadow.is_empty() {
                let victim = ((a * shadow.len() as f64) as usize).min(shadow.len() - 1);
                let (slot, _) = shadow.remove(victim);
                for catalog in &mut catalogs {
                    prop_assert!(catalog.retire(slot), "slot {slot} should be live");
                    prop_assert!(!catalog.retire(slot), "double retire must be a no-op");
                }
            } else if selector < 0.73 {
                // Compact every catalog; the live sets are identical, so the
                // remaps must be too, and the shadow renumbers through it.
                let remaps: Vec<_> = catalogs
                    .iter_mut()
                    .map(stratrec::core::catalog::StrategyCatalog::compact)
                    .collect();
                prop_assert!(remaps.windows(2).all(|w| w[0] == w[1]));
                let remap = &remaps[0];
                prop_assert_eq!(remap.live_len, shadow.len());
                for (slot, _) in &mut shadow {
                    let new = remap.remap(*slot);
                    prop_assert!(new.is_some(), "live slot {} must survive compaction", *slot);
                    *slot = new.unwrap();
                }
                for catalog in &catalogs {
                    prop_assert_eq!(catalog.slot_count(), catalog.len());
                    prop_assert!(catalog.overlay_is_empty());
                    prop_assert!(catalog.index_is_packed_live());
                }
            }

            // Delta maintenance after EVERY step: drain each catalog's
            // window (identical across policies — same churn), apply it to
            // the long-lived matrix, lazily repair the caches, and pin
            // bit-identity against a fresh recompute / re-aggregation.
            let mut deltas = Vec::new();
            for (catalog, state) in catalogs.iter_mut().zip(&mut maintained) {
                let delta = catalog.take_delta(&state.subscription).unwrap();
                state
                    .matrix
                    .apply_delta_with_scratch(
                        &delta,
                        &requests,
                        catalog,
                        &models,
                        EligibilityRule::StrategyParameters,
                        &mut model_buf,
                    )
                    .expect("replayed deltas are current and fully modeled");
                state.cache_sum.repair(&state.matrix, &delta);
                state.cache_max.repair(&state.matrix, &delta);
                deltas.push(delta);
            }
            prop_assert!(
                deltas.windows(2).all(|w| w[0] == w[1]),
                "identical churn must drain identical deltas across policies"
            );
            for (catalog, state) in catalogs.iter().zip(&maintained) {
                let fresh = WorkforceMatrix::compute_with_catalog(
                    &requests,
                    catalog,
                    &models,
                    EligibilityRule::StrategyParameters,
                )
                .expect("every replayed strategy has a model");
                prop_assert_eq!(
                    &state.matrix,
                    &fresh,
                    "delta-maintained matrix diverged, policy {:?}",
                    catalog.rebuild_policy()
                );
                prop_assert_eq!(
                    state.cache_sum.requirements(),
                    &fresh.aggregate(MAINTAINED_K, AggregationMode::Sum)[..],
                    "sum cache diverged, policy {:?}",
                    catalog.rebuild_policy()
                );
                prop_assert_eq!(
                    state.cache_max.requirements(),
                    &fresh.aggregate(MAINTAINED_K, AggregationMode::Max)[..],
                    "max cache diverged, policy {:?}",
                    catalog.rebuild_policy()
                );
            }

            // Parity check after EVERY step: the op's parameter triple
            // doubles as the query probe, and a fixed loose probe catches
            // regressions in the full live set.
            let probes = [
                DeploymentParameters::clamped(a, b, c),
                DeploymentParameters::default(),
            ];
            for catalog in &catalogs {
                prop_assert_eq!(catalog.len(), shadow.len());
                for probe in &probes {
                    let expected = shadow_eligible(&shadow, probe);
                    prop_assert_eq!(
                        catalog.eligible_for(probe),
                        expected,
                        "policy {:?}",
                        catalog.rebuild_policy()
                    );
                }
                // The catalog-resident axis orders follow the same
                // log-structured discipline and must be exact at every
                // churn point too.
                for axis in Axis::ALL {
                    prop_assert_eq!(
                        catalog.axis_order(axis),
                        shadow_axis_order(&shadow, axis),
                        "policy {:?}, axis {:?}",
                        catalog.rebuild_policy(),
                        axis
                    );
                }
            }
            // The always-policy may never accumulate an overlay.
            prop_assert!(catalogs[0].overlay_is_empty());
        }

        // Epilogue: merging / rebuilding the lagging catalogs changes nothing.
        let final_probe = DeploymentParameters::default();
        let expected = shadow_eligible(&shadow, &final_probe);
        for (catalog, state) in catalogs.iter_mut().zip(&maintained) {
            catalog.merge_overlay();
            prop_assert!(catalog.overlay_is_empty());
            prop_assert_eq!(catalog.eligible_for(&final_probe), expected.clone());
            catalog.force_rebuild();
            prop_assert_eq!(catalog.eligible_for(&final_probe), expected.clone());
            prop_assert_eq!(catalog.index().len(), shadow.len());
            for axis in Axis::ALL {
                prop_assert_eq!(
                    catalog.axis_order(axis),
                    shadow_axis_order(&shadow, axis),
                    "axis {:?} after rebuild",
                    axis
                );
            }
            // Merges and rebuilds are not mutations of the live set: the
            // delta feed stays silent and the maintained matrix stays
            // current.
            let delta = catalog.take_delta(&state.subscription).unwrap();
            prop_assert!(delta.is_empty(), "merge/rebuild must not emit churn");
        }
    }

    /// Sharded-aggregation churn parity: per-shard candidate caches
    /// (`ShardedAggregationCache`, repaired after **every** step) must stay
    /// bit-identical to the flat `aggregate` over the delta-maintained
    /// matrix, for shard counts {1, 2, 3, 8} × both `EligibilityRule`s ×
    /// both aggregation modes, across random insert / retire / compact
    /// interleavings — the shard plans following every compaction through
    /// the drained deltas.
    #[test]
    fn sharded_aggregation_parity_under_churn(
        initial in proptest::collection::vec(
            (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..20),
        ops in proptest::collection::vec(
            (0.0_f64..1.0, (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0)), 1..40),
    ) {
        const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];
        const RULES: [EligibilityRule; 2] = [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ];
        const MODES: [AggregationMode; 2] = [AggregationMode::Sum, AggregationMode::Max];
        let seed: Vec<Strategy> = initial
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect();
        let mut models =
            ModelLibrary::from_pairs(seed.iter().map(|s| (s.id, model_for(s.id.0))));
        let requests = standing_requests();
        let mut catalog =
            StrategyCatalog::with_policy(seed.clone(), RebuildPolicy::threshold(4));
        let mut next_id = seed.len() as u64;

        struct RuleState {
            rule: EligibilityRule,
            subscription: stratrec::core::catalog::DeltaSubscription,
            matrix: WorkforceMatrix,
            /// One cache per (shard count, mode) pair, flattened.
            caches: Vec<ShardedAggregationCache>,
        }
        let mut states: Vec<RuleState> = Vec::new();
        for rule in RULES {
            let matrix =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule)
                    .expect("every replayed strategy has a model");
            let caches = SHARD_COUNTS
                .iter()
                .flat_map(|&shards| {
                    MODES.map(|mode| {
                        let plan = ShardPlan::for_catalog(shards, &catalog);
                        let mut cache = ShardedAggregationCache::new(MAINTAINED_K, mode, plan);
                        cache.prime(&matrix);
                        cache
                    })
                })
                .collect();
            states.push(RuleState {
                rule,
                subscription: catalog.subscribe_delta(),
                matrix,
                caches,
            });
        }
        let mut model_buf = Vec::new();

        for &(selector, (a, b, c)) in &ops {
            // ~45 % insert, ~30 % retire, ~10 % compact, ~15 % no-op step
            // (an empty delta window must also repair cleanly).
            if selector < 0.45 {
                let strategy =
                    Strategy::from_params(next_id, DeploymentParameters::clamped(a, b, c));
                models.insert(strategy.id, model_for(next_id));
                next_id += 1;
                catalog.insert(strategy);
            } else if selector < 0.75 && !catalog.is_empty() {
                let live = catalog.live_indices();
                let victim = live[((a * live.len() as f64) as usize).min(live.len() - 1)];
                prop_assert!(catalog.retire(victim));
            } else if selector < 0.85 {
                catalog.compact();
            }

            for state in &mut states {
                let delta = catalog.take_delta(&state.subscription).unwrap();
                state
                    .matrix
                    .apply_delta_with_scratch(
                        &delta,
                        &requests,
                        &catalog,
                        &models,
                        state.rule,
                        &mut model_buf,
                    )
                    .expect("replayed deltas are current and fully modeled");
                for cache in &mut state.caches {
                    let repaired = cache.repair(&state.matrix, &delta);
                    prop_assert!(repaired <= state.matrix.rows());
                    prop_assert_eq!(cache.plan().cols(), state.matrix.cols());
                }
                for mode in MODES {
                    let flat = state.matrix.aggregate(MAINTAINED_K, mode);
                    for cache in state.caches.iter().filter(|cache| cache.mode() == mode) {
                        prop_assert_eq!(
                            cache.requirements(),
                            &flat[..],
                            "sharded cache diverged: rule {:?}, {} shards, {:?}",
                            state.rule,
                            cache.shard_count(),
                            mode
                        );
                    }
                }
            }
        }
    }

    /// Catalog-aware `ADPaR-Exact` (sweeping the catalog's pre-sorted axis
    /// orders through a reused [`SolveScratch`]) against the exhaustive
    /// `ADPaRB` reference on catalog-backed problems, **after churn**, for
    /// every rebuild policy: the sweep optimum must match brute force, and
    /// the catalog problem must reproduce the compacted plain-slice problem
    /// bit for bit (indices mapped through the live slot order).
    #[test]
    fn catalog_exact_matches_brute_force_after_churn(
        initial in proptest::collection::vec(
            (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 3..9),
        churn in proptest::collection::vec(
            (0.0_f64..1.0, (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0)), 0..14),
        req in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
        k in 1_usize..4,
    ) {
        prop_assume!(k <= initial.len());
        let request = DeploymentRequest::new(
            0,
            TaskType::TextCreation,
            DeploymentParameters::clamped(req.0, req.1, req.2),
        );
        let seed: Vec<Strategy> = initial
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect();
        let mut scratch = SolveScratch::new();
        for policy in POLICIES {
            let mut catalog = StrategyCatalog::with_policy(seed.clone(), policy);
            let mut next_id = seed.len() as u64;
            for &(selector, (a, b, c)) in &churn {
                if selector < 0.5 {
                    let strategy =
                        Strategy::from_params(next_id, DeploymentParameters::clamped(a, b, c));
                    next_id += 1;
                    catalog.insert(strategy);
                } else if catalog.len() > k {
                    // Retire a random live slot, keeping at least k alive so
                    // every problem below stays feasible.
                    let live = catalog.live_indices();
                    let victim = live[((a * live.len() as f64) as usize).min(live.len() - 1)];
                    prop_assert!(catalog.retire(victim));
                }
            }

            let live_slots = catalog.live_indices();
            let compact: Vec<Strategy> = live_slots
                .iter()
                .map(|&slot| catalog.strategy(slot).clone())
                .collect();

            let indexed = AdparProblem::with_catalog(&request, &catalog, k);
            let exact = AdparExact.solve_with_scratch(&indexed, &mut scratch).unwrap();
            let brute = AdparBruteForce.solve(&indexed).unwrap();
            prop_assert!(
                (exact.distance - brute.distance).abs() < 1e-9,
                "policy {:?}: exact {} vs brute {}",
                policy, exact.distance, brute.distance
            );
            prop_assert!(exact.strategy_indices.len() >= k);
            prop_assert!(exact
                .strategy_indices
                .iter()
                .all(|&slot| catalog.is_live(slot)));

            // The catalog problem must agree bit for bit with a plain
            // problem over the compacted live set.
            let plain = AdparProblem::new(&request, &compact, k);
            let plain_exact = AdparExact.solve(&plain).unwrap();
            prop_assert_eq!(plain_exact.relaxation, exact.relaxation, "policy {:?}", policy);
            prop_assert_eq!(
                plain_exact.alternative,
                exact.alternative.clone(),
                "policy {:?}",
                policy
            );
            let mapped: Vec<usize> = plain_exact
                .strategy_indices
                .iter()
                .map(|&compact_idx| live_slots[compact_idx])
                .collect();
            prop_assert_eq!(mapped, exact.strategy_indices, "policy {:?}", policy);
        }
    }
}
