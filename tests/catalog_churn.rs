//! Property-based churn parity: random interleavings of insert / retire /
//! compact / eligibility-query against a shadow linear scan.
//!
//! Reenactment-style replay: every generated op sequence is applied in
//! lockstep to a shadow `Vec<(slot, Strategy)>` (ground truth, scanned
//! linearly) and to catalogs running three rebuild policies — merge always
//! (threshold 0), a small finite threshold, and never merge (∞). A
//! `compact()` op renumbers the shadow through the returned `SlotRemap`
//! (all three policies must return the same remap — the live set is
//! identical). After **every** step the catalogs' indexed answers must be
//! identical to the shadow's, so a divergence pins the exact churn prefix
//! that caused it. The vendored proptest harness seeds its RNG
//! deterministically from the test name, so CI replays the same sequences
//! on every run (`PROPTEST_CASES=256` in the workflow).

use proptest::prelude::*;
use stratrec::core::adpar::{AdparBruteForce, AdparExact, AdparProblem, AdparSolver, SolveScratch};
use stratrec::core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec::core::model::{DeploymentParameters, DeploymentRequest, Strategy, TaskType};
use stratrec::geometry::Axis;

const POLICIES: [RebuildPolicy; 3] = [
    RebuildPolicy::always(),
    RebuildPolicy::threshold(4),
    RebuildPolicy::never(),
];

/// The shadow's eligible slots for `probe`, ascending (the shadow list is
/// kept in slot order).
fn shadow_eligible(shadow: &[(usize, Strategy)], probe: &DeploymentParameters) -> Vec<usize> {
    shadow
        .iter()
        .filter(|(_, s)| s.params.satisfies(probe))
        .map(|(slot, _)| *slot)
        .collect()
}

/// The shadow's slots sorted ascending by `(normalized coordinate, slot)` —
/// the ground truth for the catalog's pre-sorted axis orders.
fn shadow_axis_order(shadow: &[(usize, Strategy)], axis: Axis) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = shadow
        .iter()
        .map(|(slot, s)| (s.to_normalized_point().coord(axis), *slot))
        .collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keyed.into_iter().map(|(_, slot)| slot).collect()
}

proptest! {
    #[test]
    fn churn_parity_across_rebuild_thresholds(
        initial in proptest::collection::vec(
            (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..30),
        ops in proptest::collection::vec(
            (0.0_f64..1.0, (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0)), 1..70),
    ) {
        let seed: Vec<Strategy> = initial
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect();
        let mut shadow: Vec<(usize, Strategy)> =
            seed.iter().cloned().enumerate().collect();
        let mut catalogs: Vec<StrategyCatalog> = POLICIES
            .iter()
            .map(|&policy| StrategyCatalog::with_policy(seed.clone(), policy))
            .collect();
        let mut next_id = seed.len() as u64;

        for &(selector, (a, b, c)) in &ops {
            // Decide the op: ~42 % insert, ~23 % retire, ~8 % compact,
            // ~27 % pure query.
            if selector < 0.42 {
                let strategy =
                    Strategy::from_params(next_id, DeploymentParameters::clamped(a, b, c));
                next_id += 1;
                let mut slots = Vec::new();
                for catalog in &mut catalogs {
                    slots.push(catalog.insert(strategy.clone()));
                }
                // Every policy allocates the same stable slot number.
                prop_assert!(slots.windows(2).all(|w| w[0] == w[1]));
                shadow.push((slots[0], strategy));
            } else if selector < 0.65 && !shadow.is_empty() {
                let victim = ((a * shadow.len() as f64) as usize).min(shadow.len() - 1);
                let (slot, _) = shadow.remove(victim);
                for catalog in &mut catalogs {
                    prop_assert!(catalog.retire(slot), "slot {slot} should be live");
                    prop_assert!(!catalog.retire(slot), "double retire must be a no-op");
                }
            } else if selector < 0.73 {
                // Compact every catalog; the live sets are identical, so the
                // remaps must be too, and the shadow renumbers through it.
                let remaps: Vec<_> = catalogs
                    .iter_mut()
                    .map(stratrec::core::catalog::StrategyCatalog::compact)
                    .collect();
                prop_assert!(remaps.windows(2).all(|w| w[0] == w[1]));
                let remap = &remaps[0];
                prop_assert_eq!(remap.live_len, shadow.len());
                for (slot, _) in &mut shadow {
                    let new = remap.remap(*slot);
                    prop_assert!(new.is_some(), "live slot {} must survive compaction", *slot);
                    *slot = new.unwrap();
                }
                for catalog in &catalogs {
                    prop_assert_eq!(catalog.slot_count(), catalog.len());
                    prop_assert!(catalog.overlay_is_empty());
                    prop_assert!(catalog.index_is_packed_live());
                }
            }

            // Parity check after EVERY step: the op's parameter triple
            // doubles as the query probe, and a fixed loose probe catches
            // regressions in the full live set.
            let probes = [
                DeploymentParameters::clamped(a, b, c),
                DeploymentParameters::default(),
            ];
            for catalog in &catalogs {
                prop_assert_eq!(catalog.len(), shadow.len());
                for probe in &probes {
                    let expected = shadow_eligible(&shadow, probe);
                    prop_assert_eq!(
                        catalog.eligible_for(probe),
                        expected,
                        "policy {:?}",
                        catalog.rebuild_policy()
                    );
                }
                // The catalog-resident axis orders follow the same
                // log-structured discipline and must be exact at every
                // churn point too.
                for axis in Axis::ALL {
                    prop_assert_eq!(
                        catalog.axis_order(axis),
                        shadow_axis_order(&shadow, axis),
                        "policy {:?}, axis {:?}",
                        catalog.rebuild_policy(),
                        axis
                    );
                }
            }
            // The always-policy may never accumulate an overlay.
            prop_assert!(catalogs[0].overlay_is_empty());
        }

        // Epilogue: merging / rebuilding the lagging catalogs changes nothing.
        let final_probe = DeploymentParameters::default();
        let expected = shadow_eligible(&shadow, &final_probe);
        for catalog in &mut catalogs {
            catalog.merge_overlay();
            prop_assert!(catalog.overlay_is_empty());
            prop_assert_eq!(catalog.eligible_for(&final_probe), expected.clone());
            catalog.force_rebuild();
            prop_assert_eq!(catalog.eligible_for(&final_probe), expected.clone());
            prop_assert_eq!(catalog.index().len(), shadow.len());
            for axis in Axis::ALL {
                prop_assert_eq!(
                    catalog.axis_order(axis),
                    shadow_axis_order(&shadow, axis),
                    "axis {:?} after rebuild",
                    axis
                );
            }
        }
    }

    /// Catalog-aware `ADPaR-Exact` (sweeping the catalog's pre-sorted axis
    /// orders through a reused [`SolveScratch`]) against the exhaustive
    /// `ADPaRB` reference on catalog-backed problems, **after churn**, for
    /// every rebuild policy: the sweep optimum must match brute force, and
    /// the catalog problem must reproduce the compacted plain-slice problem
    /// bit for bit (indices mapped through the live slot order).
    #[test]
    fn catalog_exact_matches_brute_force_after_churn(
        initial in proptest::collection::vec(
            (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 3..9),
        churn in proptest::collection::vec(
            (0.0_f64..1.0, (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0)), 0..14),
        req in (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0),
        k in 1_usize..4,
    ) {
        prop_assume!(k <= initial.len());
        let request = DeploymentRequest::new(
            0,
            TaskType::TextCreation,
            DeploymentParameters::clamped(req.0, req.1, req.2),
        );
        let seed: Vec<Strategy> = initial
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect();
        let mut scratch = SolveScratch::new();
        for policy in POLICIES {
            let mut catalog = StrategyCatalog::with_policy(seed.clone(), policy);
            let mut next_id = seed.len() as u64;
            for &(selector, (a, b, c)) in &churn {
                if selector < 0.5 {
                    let strategy =
                        Strategy::from_params(next_id, DeploymentParameters::clamped(a, b, c));
                    next_id += 1;
                    catalog.insert(strategy);
                } else if catalog.len() > k {
                    // Retire a random live slot, keeping at least k alive so
                    // every problem below stays feasible.
                    let live = catalog.live_indices();
                    let victim = live[((a * live.len() as f64) as usize).min(live.len() - 1)];
                    prop_assert!(catalog.retire(victim));
                }
            }

            let live_slots = catalog.live_indices();
            let compact: Vec<Strategy> = live_slots
                .iter()
                .map(|&slot| catalog.strategy(slot).clone())
                .collect();

            let indexed = AdparProblem::with_catalog(&request, &catalog, k);
            let exact = AdparExact.solve_with_scratch(&indexed, &mut scratch).unwrap();
            let brute = AdparBruteForce.solve(&indexed).unwrap();
            prop_assert!(
                (exact.distance - brute.distance).abs() < 1e-9,
                "policy {:?}: exact {} vs brute {}",
                policy, exact.distance, brute.distance
            );
            prop_assert!(exact.strategy_indices.len() >= k);
            prop_assert!(exact
                .strategy_indices
                .iter()
                .all(|&slot| catalog.is_live(slot)));

            // The catalog problem must agree bit for bit with a plain
            // problem over the compacted live set.
            let plain = AdparProblem::new(&request, &compact, k);
            let plain_exact = AdparExact.solve(&plain).unwrap();
            prop_assert_eq!(plain_exact.relaxation, exact.relaxation, "policy {:?}", policy);
            prop_assert_eq!(
                plain_exact.alternative,
                exact.alternative.clone(),
                "policy {:?}",
                policy
            );
            let mapped: Vec<usize> = plain_exact
                .strategy_indices
                .iter()
                .map(|&compact_idx| live_slots[compact_idx])
                .collect();
            prop_assert_eq!(mapped, exact.strategy_indices, "policy {:?}", policy);
        }
    }
}
