//! Property-based churn parity: random interleavings of insert / retire /
//! eligibility-query against a shadow linear scan.
//!
//! Reenactment-style replay: every generated op sequence is applied in
//! lockstep to a shadow `Vec<(slot, Strategy)>` (ground truth, scanned
//! linearly) and to catalogs running three rebuild policies — merge always
//! (threshold 0), a small finite threshold, and never merge (∞). After
//! **every** step the catalogs' indexed answers must be identical to the
//! shadow's, so a divergence pins the exact churn prefix that caused it.
//! The vendored proptest harness seeds its RNG deterministically from the
//! test name, so CI replays the same sequences on every run
//! (`PROPTEST_CASES=256` in the workflow).

use proptest::prelude::*;
use stratrec::core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec::core::model::{DeploymentParameters, Strategy};

const POLICIES: [RebuildPolicy; 3] = [
    RebuildPolicy::always(),
    RebuildPolicy::threshold(4),
    RebuildPolicy::never(),
];

/// The shadow's eligible slots for `probe`, ascending (the shadow list is
/// kept in slot order).
fn shadow_eligible(shadow: &[(usize, Strategy)], probe: &DeploymentParameters) -> Vec<usize> {
    shadow
        .iter()
        .filter(|(_, s)| s.params.satisfies(probe))
        .map(|(slot, _)| *slot)
        .collect()
}

proptest! {
    #[test]
    fn churn_parity_across_rebuild_thresholds(
        initial in proptest::collection::vec(
            (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..30),
        ops in proptest::collection::vec(
            (0.0_f64..1.0, (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0)), 1..70),
    ) {
        let seed: Vec<Strategy> = initial
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect();
        let mut shadow: Vec<(usize, Strategy)> =
            seed.iter().cloned().enumerate().collect();
        let mut catalogs: Vec<StrategyCatalog> = POLICIES
            .iter()
            .map(|&policy| StrategyCatalog::with_policy(seed.clone(), policy))
            .collect();
        let mut next_id = seed.len() as u64;

        for &(selector, (a, b, c)) in &ops {
            // Decide the op: ~45 % insert, ~25 % retire, ~30 % pure query.
            if selector < 0.45 {
                let strategy =
                    Strategy::from_params(next_id, DeploymentParameters::clamped(a, b, c));
                next_id += 1;
                let mut slots = Vec::new();
                for catalog in &mut catalogs {
                    slots.push(catalog.insert(strategy.clone()));
                }
                // Every policy allocates the same stable slot number.
                prop_assert!(slots.windows(2).all(|w| w[0] == w[1]));
                shadow.push((slots[0], strategy));
            } else if selector < 0.70 && !shadow.is_empty() {
                let victim = ((a * shadow.len() as f64) as usize).min(shadow.len() - 1);
                let (slot, _) = shadow.remove(victim);
                for catalog in &mut catalogs {
                    prop_assert!(catalog.retire(slot), "slot {slot} should be live");
                    prop_assert!(!catalog.retire(slot), "double retire must be a no-op");
                }
            }

            // Parity check after EVERY step: the op's parameter triple
            // doubles as the query probe, and a fixed loose probe catches
            // regressions in the full live set.
            let probes = [
                DeploymentParameters::clamped(a, b, c),
                DeploymentParameters::default(),
            ];
            for catalog in &catalogs {
                prop_assert_eq!(catalog.len(), shadow.len());
                for probe in &probes {
                    let expected = shadow_eligible(&shadow, probe);
                    prop_assert_eq!(
                        catalog.eligible_for(probe),
                        expected,
                        "policy {:?}",
                        catalog.rebuild_policy()
                    );
                }
            }
            // The always-policy may never accumulate an overlay.
            prop_assert!(catalogs[0].overlay_is_empty());
        }

        // Epilogue: merging / rebuilding the lagging catalogs changes nothing.
        let final_probe = DeploymentParameters::default();
        let expected = shadow_eligible(&shadow, &final_probe);
        for catalog in &mut catalogs {
            catalog.merge_overlay();
            prop_assert!(catalog.overlay_is_empty());
            prop_assert_eq!(catalog.eligible_for(&final_probe), expected.clone());
            catalog.force_rebuild();
            prop_assert_eq!(catalog.eligible_for(&final_probe), expected.clone());
            prop_assert_eq!(catalog.index().len(), shadow.len());
        }
    }
}
