//! Crash recovery by prefix-cut fault injection, end to end.
//!
//! The durable tier's crash model is a torn log: the process dies and an
//! arbitrary **prefix** of `wal.log` survives. The property test here
//! drives a [`DurableCatalog`] through a random churn sequence while a
//! shadow catalog applies the same mutations in lockstep, snapshotting the
//! full observable projection after every logged record — strategies,
//! liveness, eligibility answers, all three axis orders, the SoA-kernel
//! workforce matrix, and (at record boundaries) a complete pipeline
//! report. Then the log is cut at **every record boundary and mid-record**
//! (inside frame headers and inside payloads), each cut is recovered in a
//! fresh directory, and the recovered catalog must project exactly the
//! shadow state of the last record that fully survived the cut. Mid-record
//! cuts must additionally surface typed tail corruption; boundary cuts
//! must scan clean.
//!
//! Checkpoints are disabled (`CheckpointPolicy::Never`) and sync is off,
//! so the recovered state is a pure function of the log prefix — which is
//! precisely what the property pins down. The checkpointed fast path is
//! covered by the durable crate's unit tests.
//!
//! The non-property tests exercise the corruption taxonomy through the
//! full [`DurableCatalog::recover`] path (truncation, bit flips,
//! duplicated tail frames) and the provenance acceptance scenario: every
//! decision logged across a five-epoch workload churn reenacts
//! byte-identically from the recovered log.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use proptest::prelude::*;
use stratrec::core::availability::AvailabilityPdf;
use stratrec::core::batch::BatchObjective;
use stratrec::core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec::core::error::StratRecError;
use stratrec::core::model::{DeploymentParameters, DeploymentRequest, Strategy, TaskType};
use stratrec::core::modeling::{ModelLibrary, StrategyModel};
use stratrec::core::stratrec::{StratRec, StratRecConfig, StratRecReport};
use stratrec::core::workforce::{AggregationMode, EligibilityRule, WorkforceMatrix};
use stratrec::durable::recovery::recover_catalog;
use stratrec::durable::testutil::TempDir;
use stratrec::durable::wal::{scan_bytes, WAL_FILE_NAME, WAL_HEADER_LEN};
use stratrec::durable::{
    CheckpointPolicy, DecisionRecord, DurableCatalog, DurableOptions, Provenance,
};
use stratrec::geometry::Axis;
use stratrec::workload::churn::CompactPolicy;
use stratrec::workload::ChurnScenario;

const POLICY: RebuildPolicy = RebuildPolicy::threshold(4);

/// Deterministic per-strategy model, id-distinct so matrix cells differ.
fn model_for(id: u64) -> StrategyModel {
    let alpha = 0.4 + ((id * 31) % 47) as f64 / 100.0;
    StrategyModel::uniform(alpha, 1.0 - alpha)
}

/// The standing batch every projection is computed against (one loose, one
/// mid, one strict request).
fn standing_requests() -> Vec<DeploymentRequest> {
    [(0.05, 0.95, 0.95), (0.55, 0.6, 0.65), (0.85, 0.35, 0.3)]
        .iter()
        .enumerate()
        .map(|(i, &(q, c, l))| {
            DeploymentRequest::new(
                i as u64,
                TaskType::SentenceTranslation,
                DeploymentParameters::clamped(q, c, l),
            )
        })
        .collect()
}

fn eligibility_probes() -> [DeploymentParameters; 3] {
    [
        DeploymentParameters::default(),
        DeploymentParameters::clamped(0.5, 0.5, 0.5),
        DeploymentParameters::clamped(0.9, 0.2, 0.15),
    ]
}

/// Everything recovery promises to reproduce: the slot table, liveness,
/// indexed eligibility answers, the catalog-resident axis orders, and the
/// workforce matrix the SoA kernel streams from the catalog's columnar
/// mirror. Bit-identity of the matrix is the SoA-state check.
#[derive(Debug, PartialEq)]
struct Observed {
    epoch: u64,
    len: usize,
    slot_count: usize,
    strategies: Vec<Strategy>,
    live: Vec<bool>,
    eligible: Vec<Vec<usize>>,
    axis_orders: Vec<Vec<usize>>,
    matrix: WorkforceMatrix,
}

fn observe(catalog: &StrategyCatalog, models: &ModelLibrary) -> Observed {
    let requests = standing_requests();
    Observed {
        epoch: catalog.epoch(),
        len: catalog.len(),
        slot_count: catalog.slot_count(),
        strategies: catalog.strategies().to_vec(),
        live: (0..catalog.slot_count())
            .map(|slot| catalog.is_live(slot))
            .collect(),
        eligible: eligibility_probes()
            .iter()
            .map(|probe| catalog.eligible_for(probe))
            .collect(),
        axis_orders: Axis::ALL
            .iter()
            .map(|&axis| catalog.axis_order(axis))
            .collect(),
        matrix: WorkforceMatrix::compute_with_catalog(
            &requests,
            catalog,
            models,
            EligibilityRule::StrategyParameters,
        )
        .expect("every replayed strategy has a model"),
    }
}

/// The full pipeline run at a recovered state — `None` when the batch is
/// infeasible at that state (both sides must then agree it is).
fn pipeline_report(catalog: &StrategyCatalog, models: &ModelLibrary) -> Option<StratRecReport> {
    let layer = StratRec::new(StratRecConfig {
        k: 2,
        objective: BatchObjective::Throughput,
        aggregation: AggregationMode::Sum,
    });
    layer
        .process_batch_with_catalog(
            &standing_requests(),
            catalog,
            models,
            &AvailabilityPdf::certain(0.8),
        )
        .ok()
}

/// Copies the durable directory's checkpoints and the first `cut` bytes of
/// its WAL into a fresh directory — the crash image recovery is run on.
fn crash_image(source: &Path, wal_bytes: &[u8], cut: usize, target: &Path) {
    fs::write(target.join(WAL_FILE_NAME), &wal_bytes[..cut]).unwrap();
    for entry in fs::read_dir(source).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|ext| ext == "ckpt") {
            fs::copy(&path, target.join(path.file_name().unwrap())).unwrap();
        }
    }
}

/// When `STRATREC_RECOVERY_DUMP_DIR` is set (the CI fault-injection job
/// points it at an artifact directory), preserves the failing cut's crash
/// image — the truncated WAL plus checkpoints — before the temp dir's RAII
/// cleanup destroys it, so the exact recovery input ships with the failure.
fn persist_crash_image(image: &Path, cut: usize) {
    let Some(dump_root) = std::env::var_os("STRATREC_RECOVERY_DUMP_DIR") else {
        return;
    };
    let target = Path::new(&dump_root).join(format!("cut-{cut}"));
    if fs::create_dir_all(&target).is_err() {
        return;
    }
    for entry in fs::read_dir(image).into_iter().flatten().flatten() {
        let _ = fs::copy(entry.path(), target.join(entry.file_name()));
    }
}

proptest! {
    /// The headline durability property: for a random churn log, **every**
    /// prefix cut recovers to exactly the shadow state after the last
    /// record that fully survived — and cuts inside a frame surface typed
    /// corruption while boundary cuts scan clean.
    #[test]
    fn every_prefix_cut_recovers_to_the_shadow_state(
        initial in proptest::collection::vec(
            (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 0..8),
        ops in proptest::collection::vec(
            (0.0_f64..1.0, (0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0)), 1..18),
    ) {
        let seed: Vec<Strategy> = initial
            .iter()
            .enumerate()
            .map(|(i, &(q, c, l))| {
                Strategy::from_params(i as u64, DeploymentParameters::clamped(q, c, l))
            })
            .collect();
        let mut models =
            ModelLibrary::from_pairs(seed.iter().map(|s| (s.id, model_for(s.id.0))));
        let mut next_id = seed.len() as u64;

        let dir = TempDir::new("wal-prefix-cut");
        let durable = DurableCatalog::create(
            dir.path(),
            StrategyCatalog::with_policy(seed.clone(), POLICY),
            DurableOptions {
                sync: false,
                checkpoint: CheckpointPolicy::Never,
            },
        )
        .unwrap();
        let mut shadow = StrategyCatalog::with_policy(seed, POLICY);

        // Shadow projections indexed by "records fully on disk": entry 0 is
        // the pre-churn state, entry i the state after the i-th record.
        let mut observed = vec![observe(&shadow, &models)];
        for &(selector, (a, b, c)) in &ops {
            if selector < 0.45 {
                let strategy =
                    Strategy::from_params(next_id, DeploymentParameters::clamped(a, b, c));
                models.insert(strategy.id, model_for(next_id));
                next_id += 1;
                let (slot, _) = durable.update(|c| c.insert(strategy.clone())).unwrap();
                prop_assert_eq!(slot, shadow.insert(strategy));
            } else if selector < 0.8 {
                let live = shadow.live_indices();
                if live.is_empty() {
                    continue;
                }
                let victim = live[((a * live.len() as f64) as usize).min(live.len() - 1)];
                let (retired, _) = durable.update(|c| c.retire(victim)).unwrap();
                prop_assert!(retired);
                prop_assert!(shadow.retire(victim));
            } else {
                if shadow.slot_count() == shadow.len() {
                    continue; // nothing to compact away
                }
                let (remap, _) = durable.update(|c| c.compact()).unwrap();
                prop_assert_eq!(remap, shadow.compact());
            }
            observed.push(observe(&shadow, &models));
        }
        drop(durable);

        let bytes = fs::read(dir.path().join(WAL_FILE_NAME)).unwrap();
        let full = scan_bytes(&bytes);
        prop_assert!(full.corruption.is_none(), "the uncut log must scan clean");
        prop_assert_eq!(full.records.len(), observed.len() - 1);
        prop_assert_eq!(full.valid_len as usize, bytes.len());

        // Each record's frame spans [starts[i], ends[i]); a cut is a clean
        // boundary exactly when it lands on the header end or a frame end.
        let starts: Vec<usize> = full.records.iter().map(|(off, _)| *off as usize).collect();
        let ends: Vec<usize> = (0..starts.len())
            .map(|i| starts.get(i + 1).copied().unwrap_or(bytes.len()))
            .collect();
        let mut boundaries = BTreeSet::from([WAL_HEADER_LEN as usize]);
        boundaries.extend(ends.iter().copied());

        // Cut points: every boundary, plus — per record — a cut inside the
        // frame header and one in the middle of the payload; plus cuts
        // inside the file header itself.
        let mut cuts = boundaries.clone();
        cuts.insert(0);
        cuts.insert(3);
        for (&start, &end) in starts.iter().zip(&ends) {
            cuts.insert(start + 1);
            cuts.insert((start + end) / 2);
        }

        for &cut in &cuts {
            let image = TempDir::new("wal-cut-image");
            crash_image(dir.path(), &bytes, cut, image.path());

            let checked = (|| -> Result<(), proptest::test_runner::TestCaseError> {
                let recovered = match recover_catalog(image.path(), POLICY) {
                    Ok(recovered) => recovered,
                    Err(error) => {
                        return Err(proptest::test_runner::TestCaseError::Fail(format!(
                            "recovery must tolerate any prefix cut, but failed at byte {cut}: {error}"
                        )))
                    }
                };

                // The state must be the shadow state of the last fully
                // durable record before the cut.
                let survivors = ends.iter().filter(|&&end| end <= cut).count();
                let expected = &observed[survivors];
                prop_assert_eq!(
                    &observe(&recovered.catalog, &models),
                    expected,
                    "cut at byte {} of {}",
                    cut,
                    bytes.len()
                );
                prop_assert_eq!(recovered.report.epoch, expected.epoch);
                prop_assert_eq!(recovered.report.records_applied, survivors);

                // Tail diagnosis: a boundary cut is a clean (just shorter)
                // log; anything else must surface typed corruption, never a
                // panic.
                if boundaries.contains(&cut) {
                    prop_assert!(recovered.report.corruption.is_none());
                } else {
                    prop_assert!(
                        matches!(
                            recovered.report.corruption,
                            Some(StratRecError::WalCorrupt { .. })
                        ),
                        "cut at byte {cut} must be typed corruption"
                    );
                }

                // At boundary cuts, the full recommendation pipeline must
                // reproduce the shadow's report bit for bit (this sweeps
                // the recovered SoA mirror, axis orders and eligibility
                // through the real solve).
                if boundaries.contains(&cut) {
                    let shadow_state = StrategyCatalog::from_checkpoint_parts(
                        expected
                            .strategies
                            .iter()
                            .cloned()
                            .zip(expected.live.iter().copied())
                            .collect(),
                        expected.epoch,
                        POLICY,
                    );
                    prop_assert_eq!(
                        pipeline_report(&recovered.catalog, &models),
                        pipeline_report(&shadow_state, &models),
                        "pipeline diverged at cut {}",
                        cut
                    );
                }
                Ok(())
            })();
            if let Err(failure) = checked {
                persist_crash_image(image.path(), cut);
                return Err(failure);
            }
        }
    }
}

/// Builds a small durable log with a few epochs of churn and returns the
/// directory plus the raw WAL bytes.
fn churned_log(label: &str) -> (TempDir, Vec<u8>) {
    let seed: Vec<Strategy> = (0..6)
        .map(|i| {
            Strategy::from_params(
                i,
                DeploymentParameters::clamped(0.3 + i as f64 * 0.1, 0.5, 0.45),
            )
        })
        .collect();
    let dir = TempDir::new(label);
    let durable = DurableCatalog::create(
        dir.path(),
        StrategyCatalog::with_policy(seed, POLICY),
        DurableOptions {
            sync: false,
            checkpoint: CheckpointPolicy::Never,
        },
    )
    .unwrap();
    durable
        .update(|c| {
            c.insert(Strategy::from_params(
                6,
                DeploymentParameters::clamped(0.7, 0.6, 0.55),
            ))
        })
        .unwrap();
    durable.update(|c| c.retire(1)).unwrap();
    durable.update(|c| c.compact()).unwrap();
    drop(durable);
    let bytes = fs::read(dir.path().join(WAL_FILE_NAME)).unwrap();
    (dir, bytes)
}

/// Recovery (through the full [`DurableCatalog::recover`] path) of a log
/// whose last frame was torn mid-payload: typed corruption naming the
/// frame's byte offset, state rolled back to the last full record, and the
/// reopened log stays appendable.
#[test]
fn truncation_mid_record_recovers_the_valid_prefix() {
    let (dir, bytes) = churned_log("corrupt-truncate");
    let scan = scan_bytes(&bytes);
    let (last_offset, _) = *scan.records.last().unwrap();
    let cut = last_offset as usize + 3; // inside the last frame's header
    fs::write(dir.path().join(WAL_FILE_NAME), &bytes[..cut]).unwrap();

    let (recovered, report, _) = DurableCatalog::recover(
        dir.path(),
        POLICY,
        DurableOptions {
            sync: false,
            checkpoint: CheckpointPolicy::Never,
        },
    )
    .unwrap();
    assert_eq!(report.valid_len, last_offset);
    match report.corruption {
        Some(StratRecError::WalCorrupt { offset, .. }) => assert_eq!(offset, last_offset),
        ref other => panic!("expected torn-record corruption, got {other:?}"),
    }
    // The compact record was torn off: the retired slot is still a hole.
    assert_eq!(recovered.epoch(), 2);
    // The reopened log truncated the torn tail and accepts new mutations.
    recovered.update(|c| c.retire(2)).unwrap();
    assert_eq!(recovered.epoch(), 3);
}

/// A flipped payload byte is a checksum mismatch at that frame's offset;
/// everything before it survives.
#[test]
fn bit_flip_is_a_checksum_mismatch_at_the_frame_offset() {
    let (dir, mut bytes) = churned_log("corrupt-bitflip");
    let scan = scan_bytes(&bytes);
    let (target_offset, _) = scan.records[1]; // the retire record
    bytes[target_offset as usize + 8] ^= 0x40; // first payload byte
    fs::write(dir.path().join(WAL_FILE_NAME), &bytes).unwrap();

    let recovered = recover_catalog(dir.path(), POLICY).unwrap();
    assert_eq!(recovered.report.epoch, 1, "only the insert survives");
    assert_eq!(recovered.report.valid_len, target_offset);
    match recovered.report.corruption {
        Some(StratRecError::WalCorrupt { offset, ref kind }) => {
            assert_eq!(offset, target_offset);
            assert!(kind.contains("checksum"), "kind was {kind:?}");
        }
        ref other => panic!("expected checksum corruption, got {other:?}"),
    }
}

/// A duplicated tail frame (e.g. a replayed append after a partial copy)
/// re-announces an epoch that already happened: the scan itself is clean,
/// so replay catches it as an out-of-sequence record and cuts the valid
/// prefix at the duplicate's offset.
#[test]
fn duplicated_tail_record_is_out_of_sequence_corruption() {
    let (dir, mut bytes) = churned_log("corrupt-dup-tail");
    let scan = scan_bytes(&bytes);
    let (last_offset, _) = *scan.records.last().unwrap();
    let duplicate_offset = bytes.len() as u64;
    let tail = bytes[last_offset as usize..].to_vec();
    bytes.extend_from_slice(&tail);
    fs::write(dir.path().join(WAL_FILE_NAME), &bytes).unwrap();

    let recovered = recover_catalog(dir.path(), POLICY).unwrap();
    assert_eq!(recovered.report.epoch, 3, "the original log fully applies");
    assert_eq!(recovered.report.valid_len, duplicate_offset);
    match recovered.report.corruption {
        Some(StratRecError::WalCorrupt { offset, ref kind }) => {
            assert_eq!(offset, duplicate_offset);
            assert!(kind.contains("out of sequence"), "kind was {kind:?}");
        }
        ref other => panic!("expected out-of-sequence corruption, got {other:?}"),
    }
}

/// The provenance acceptance scenario: a five-epoch workload churn with a
/// decision logged per epoch; after recovery, every decision reenacts
/// **byte-identically** against the catalog pinned at its epoch.
#[test]
fn five_epoch_churn_decisions_reenact_byte_identically() {
    let instance = ChurnScenario {
        initial_strategies: 40,
        epochs: 5,
        inserts_per_epoch: 5,
        retires_per_epoch: 4,
        batch_size: 4,
        k: 3,
        compact: CompactPolicy::EveryNEpochs(2),
        ..ChurnScenario::default()
    }
    .materialize();
    let config = StratRecConfig {
        k: instance.k,
        objective: BatchObjective::Throughput,
        aggregation: AggregationMode::Sum,
    };
    let layer = StratRec::new(config);
    let pdf = AvailabilityPdf::certain(instance.availability.value());

    let dir = TempDir::new("provenance-five-epochs");
    let durable = DurableCatalog::create(
        dir.path(),
        instance.catalog(POLICY),
        DurableOptions {
            sync: false,
            checkpoint: CheckpointPolicy::EveryMutations(8),
        },
    )
    .unwrap();
    for i in 0..instance.epochs.len() {
        durable
            .update(|catalog| instance.apply_epoch(i, catalog))
            .unwrap();
        let snapshot = durable.pin();
        let report = layer
            .process_batch_with_catalog(
                &instance.standing,
                snapshot.catalog(),
                &instance.models,
                &pdf,
            )
            .unwrap();
        durable
            .log_decision(&DecisionRecord {
                epoch: snapshot.epoch(),
                config,
                availability: pdf.expectation().value(),
                requests: instance.standing.clone(),
                report,
            })
            .unwrap();
    }
    drop(durable);

    let provenance = Provenance::load(dir.path(), POLICY).unwrap();
    assert_eq!(provenance.decisions().len(), instance.epochs.len());
    for (_, decision) in provenance.decisions() {
        provenance
            .verify_decision(decision, &instance.models)
            .unwrap();
    }
}
