//! Snapshot-isolation history checking for the concurrent serving path.
//!
//! `run_churn_stress` races reader threads (each owning a `SnapshotReader`
//! plus a `SnapshotSession`) against one churn writer publishing epochs
//! through a `ConcurrentCatalog`, and records every serve as a
//! `(pinned epoch, report)` pair. This checker then verifies the recorded
//! history **after the fact**, in the style of offline isolation checkers:
//! instead of trusting any in-flight assertion, it reenacts the entire
//! epoch stream *sequentially* on a single thread — the ground truth no
//! concurrency can touch — and demands that
//!
//! 1. every epoch the writer published is exactly the sequential replay's
//!    epoch at that boundary (committed states only — a torn or
//!    half-applied epoch could not match),
//! 2. every concurrent read is **byte-identical** (`PartialEq` over the
//!    full `StratRecReport`, `f64`s included) to the sequential pipeline's
//!    report at the epoch the reader was pinned to,
//! 3. each reader's pinned epochs are monotone, and every one of them was
//!    actually published (no read from thin air),
//! 4. the sequential `pinned_at_epoch` path agrees: an `AdparProblem` built
//!    from the replayed state at epoch *e* and pinned at *e* validates and
//!    solves, while pinning it at any other epoch fails with the typed
//!    `StaleCatalog` — the same epoch discipline the snapshots enforce
//!    structurally.
//!
//! The fixed-scenario test races 4 readers; the proptest variant fuzzes
//! scenario shapes (size, churn rate, compaction cadence, seed) under the
//! same checker. The vendored proptest harness seeds deterministically
//! from the test name, so CI replays identical histories' *scenarios* (the
//! thread interleavings still vary — the checker is schedule-independent
//! by construction).

use std::collections::BTreeMap;

use proptest::prelude::*;
use stratrec::core::adpar::{AdparExact, AdparProblem, AdparSolver};
use stratrec::core::availability::AvailabilityPdf;
use stratrec::core::batch::BatchObjective;
use stratrec::core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec::core::engine::BatchEngine;
use stratrec::core::error::StratRecError;
use stratrec::core::stratrec::{StratRec, StratRecConfig, StratRecReport};
use stratrec::core::workforce::AggregationMode;
use stratrec::workload::churn::{ChurnInstance, ChurnScenario, CompactPolicy};
use stratrec::workload::stress::{run_churn_stress, StressHistory};

/// Sequentially replays `instance`'s epoch stream and returns the catalog
/// state at every boundary (pre-churn state first) keyed by its epoch —
/// the single-threaded ground truth the concurrent history must match.
fn sequential_states(
    instance: &ChurnInstance,
    policy: RebuildPolicy,
) -> BTreeMap<u64, StrategyCatalog> {
    let mut catalog = instance.catalog(policy);
    let mut states = BTreeMap::new();
    states.insert(catalog.epoch(), catalog.detached_clone());
    for i in 0..instance.epochs.len() {
        instance.apply_epoch(i, &mut catalog);
        states.insert(catalog.epoch(), catalog.detached_clone());
    }
    states
}

/// The full checker: reenact sequentially, then hold every recorded read
/// to the replayed report of its pinned epoch.
fn check_history(
    instance: &ChurnInstance,
    layer: &StratRec,
    policy: RebuildPolicy,
    history: &StressHistory,
) {
    let states = sequential_states(instance, policy);
    let pdf = AvailabilityPdf::certain(instance.availability.value());

    // 1. Published epochs are exactly the sequential boundaries, in order.
    let published_epochs: Vec<u64> = history.published.iter().map(|s| s.epoch()).collect();
    let sequential_epochs: Vec<u64> = states.keys().copied().collect();
    assert_eq!(
        published_epochs, sequential_epochs,
        "the writer published a state the sequential replay never reaches"
    );

    // The sequential report at every boundary — computed once, compared
    // against both the published snapshot and every read pinned there.
    let mut expected: BTreeMap<u64, StratRecReport> = BTreeMap::new();
    for (&epoch, state) in &states {
        let report = layer
            .process_batch_with_catalog(&instance.standing, state, &instance.models, &pdf)
            .expect("the scenario models every strategy");
        let snapshot = history
            .snapshot_at(epoch)
            .expect("every sequential boundary was published");
        let from_snapshot = layer
            .process_batch_with_catalog(
                &instance.standing,
                snapshot.catalog(),
                &instance.models,
                &pdf,
            )
            .expect("the scenario models every strategy");
        assert_eq!(
            report, from_snapshot,
            "published snapshot at epoch {epoch} diverges from the sequential state"
        );
        expected.insert(epoch, report);
    }

    // 2 + 3. Every read is byte-identical to the sequential report at its
    // pinned epoch, and each reader's epochs are monotone.
    for (reader, records) in history.reads.iter().enumerate() {
        assert!(!records.is_empty(), "reader {reader} never served");
        let mut last_epoch = 0;
        for (i, record) in records.iter().enumerate() {
            assert!(
                record.epoch >= last_epoch,
                "reader {reader} moved backwards: {} after {last_epoch}",
                record.epoch
            );
            last_epoch = record.epoch;
            let want = expected.get(&record.epoch).unwrap_or_else(|| {
                panic!(
                    "reader {reader} read {i} pinned unpublished epoch {}",
                    record.epoch
                )
            });
            assert_eq!(
                &record.report, want,
                "reader {reader} read {i} at epoch {} is not byte-identical \
                 to the sequential pipeline",
                record.epoch
            );
        }
        assert_eq!(
            records.first().unwrap().epoch,
            *sequential_epochs.first().unwrap(),
            "reader {reader} missed the pre-churn snapshot"
        );
        assert_eq!(
            records.last().unwrap().epoch,
            history.final_epoch,
            "reader {reader} never reached the final epoch"
        );
    }

    // 4. The sequential `pinned_at_epoch` discipline ties in: a problem
    // over the replayed state at epoch e, pinned at e, validates and
    // solves; pinned anywhere else it fails typed.
    let request = &instance.standing[0];
    let k = instance.k.clamp(1, 2);
    for (&epoch, state) in &states {
        let pinned = AdparProblem::with_catalog(request, state, k).pinned_at_epoch(epoch);
        let solved = AdparExact.solve(&pinned);
        assert!(
            solved.is_ok() || !matches!(solved, Err(StratRecError::StaleCatalog { .. })),
            "a problem pinned at its own epoch may fail feasibility, never staleness"
        );
        let stale = AdparProblem::with_catalog(request, state, k).pinned_at_epoch(epoch + 1);
        assert!(
            matches!(
                AdparExact.solve(&stale),
                Err(StratRecError::StaleCatalog { expected, found })
                    if expected == epoch + 1 && found == epoch
            ),
            "pinning at a foreign epoch must fail with StaleCatalog"
        );
    }
}

fn layer_for(instance: &ChurnInstance, aggregation: AggregationMode, threads: usize) -> StratRec {
    StratRec::new(StratRecConfig {
        k: instance.k,
        objective: BatchObjective::Throughput,
        aggregation,
    })
    .with_engine(BatchEngine::with_threads(threads))
}

/// The acceptance-criterion run: ≥ 4 reader threads racing 1 churn writer,
/// every read checked byte-identical against the sequential replay at its
/// pinned epoch, with a mid-stream compaction cadence in the mix.
#[test]
fn four_readers_racing_one_writer_serve_snapshot_isolated_reads() {
    let instance = ChurnScenario {
        initial_strategies: 120,
        epochs: 8,
        inserts_per_epoch: 10,
        retires_per_epoch: 8,
        batch_size: 6,
        k: 3,
        compact: CompactPolicy::EveryNEpochs(3),
        ..ChurnScenario::default()
    }
    .materialize();
    let layer = layer_for(&instance, AggregationMode::Sum, 2);
    let policy = RebuildPolicy::threshold(6);
    let history = run_churn_stress(&instance, &layer, policy, 4).unwrap();
    assert_eq!(history.reads.len(), 4);
    assert!(
        history.total_reads() >= 4 * 2,
        "each reader serves at least twice"
    );
    check_history(&instance, &layer, policy, &history);
}

/// Same checker under a reader that lapses: a tiny delta-lapse limit on
/// the scenario cannot be injected through `run_churn_stress` (it builds
/// its own catalog), so this exercises the recovery path structurally —
/// a reader holding a session across an eviction re-primes and still
/// serves byte-identical reads (covered in unit tests) while the history
/// here pins the default-limit behaviour: no eviction, all deltas applied.
#[test]
fn max_aggregation_histories_are_isolated_too() {
    let instance = ChurnScenario {
        initial_strategies: 90,
        epochs: 5,
        inserts_per_epoch: 7,
        retires_per_epoch: 7,
        batch_size: 5,
        k: 2,
        compact: CompactPolicy::TombstoneRatio(0.15),
        ..ChurnScenario::default()
    }
    .materialize();
    let layer = layer_for(&instance, AggregationMode::Max, 1);
    let policy = RebuildPolicy::always();
    let history = run_churn_stress(&instance, &layer, policy, 4).unwrap();
    check_history(&instance, &layer, policy, &history);
}

proptest! {
    /// Fuzzed scenario shapes under the same checker: whatever the catalog
    /// size, churn rate, compaction cadence or seed, every concurrent read
    /// must replay byte-identically at its pinned epoch. `PROPTEST_CASES`
    /// scales the sweep in CI (the stress job runs 256 cases across
    /// varying `RUST_TEST_THREADS`).
    #[test]
    fn fuzzed_churn_histories_replay_byte_identically(
        initial in 20_usize..70,
        epochs in 2_usize..6,
        inserts in 1_usize..9,
        retires in 1_usize..7,
        batch in 2_usize..6,
        k in 1_usize..4,
        seed in 0_u64..1_000,
        compact_every in 0_usize..4,
        threshold in 0_usize..9,
    ) {
        let instance = ChurnScenario {
            initial_strategies: initial,
            epochs,
            inserts_per_epoch: inserts,
            retires_per_epoch: retires,
            batch_size: batch,
            k,
            seed,
            compact: if compact_every == 0 {
                CompactPolicy::Never
            } else {
                CompactPolicy::EveryNEpochs(compact_every)
            },
            ..ChurnScenario::default()
        }
        .materialize();
        let layer = layer_for(&instance, AggregationMode::Sum, 1);
        let policy = if threshold == 0 {
            RebuildPolicy::never()
        } else {
            RebuildPolicy::threshold(threshold)
        };
        let history = run_churn_stress(&instance, &layer, policy, 4).unwrap();
        check_history(&instance, &layer, policy, &history);
    }
}
