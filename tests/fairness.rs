//! Fairness regression suite: a tenant flooding the queue with 10× every
//! other tenant's volume must never push a light tenant's granted budget
//! below its fairness floor — not at steady state, and not across catalog
//! churn (inserts, retires, a mid-stream compaction). Runs on both the flat
//! and the sharded aggregation path, which must also grant bit-identically.

use stratrec::core::availability::AvailabilityPdf;
use stratrec::core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec::core::fairness::{FairnessPolicy, TenantShare};
use stratrec::core::model::{DeploymentParameters, Strategy};
use stratrec::core::modeling::{ModelLibrary, StrategyModel};
use stratrec::core::stratrec::{StratRec, StratRecConfig, TenantOutcome};
use stratrec::workload::tenants::TenantMixScenario;

const TENANTS: usize = 4;
const HEAVY: usize = 0;
const FLOOR: f64 = 0.2;

/// Deterministic per-strategy model (same scheme as the churn replay) so
/// the tenant matrices carry a real mix of finite and infinite cells.
fn model_for(id: u64) -> StrategyModel {
    let alpha = 0.4 + ((id * 31) % 47) as f64 / 100.0;
    StrategyModel::uniform(alpha, 1.0 - alpha)
}

/// A varied strategy spread over the parameter cube, biased loose enough
/// that most requests of the `[0.625, 1]` workload find eligible columns.
fn strategy_for(id: u64) -> Strategy {
    let q = 0.30 + ((id * 13) % 60) as f64 / 100.0;
    let c = 0.45 + ((id * 29) % 55) as f64 / 100.0;
    let l = 0.40 + ((id * 7) % 60) as f64 / 100.0;
    Strategy::from_params(id, DeploymentParameters::clamped(q, c, l))
}

/// The Zipf-flat mix with one 10× flooding tenant and 0.2 floors.
fn flooded_mix() -> stratrec::workload::TenantMix {
    TenantMixScenario {
        tenants: TENANTS,
        zipf_s: 0.0,
        total_requests: 160,
        heavy_tenant: Some(HEAVY),
        heavy_factor: 10.0,
        floor: FLOOR,
        seed: 7,
    }
    .materialize()
}

/// Every light tenant's grant must reach `min(demand, floor · budget)` —
/// the guarantee [`FairnessPolicy::split`] makes — and the grants must
/// never oversubscribe the budget.
fn assert_floors_hold(outcomes: &[TenantOutcome], budget: f64, context: &str) {
    assert_eq!(outcomes.len(), TENANTS, "{context}: one outcome per tenant");
    let total: f64 = outcomes.iter().map(|o| o.granted.value()).sum();
    assert!(
        total <= budget + 1e-9,
        "{context}: grants {total} oversubscribe budget {budget}"
    );
    for outcome in outcomes {
        let floor_grant = (FLOOR * budget).min(outcome.demand);
        assert!(
            outcome.granted.value() >= floor_grant - 1e-12,
            "{context}: tenant {} granted {} below its floor entitlement {floor_grant} \
             (demand {})",
            outcome.tenant,
            outcome.granted.value(),
            outcome.demand,
        );
    }
}

#[test]
fn flooding_tenant_never_starves_a_floor_across_churn_and_compaction() {
    let mix = flooded_mix();
    let batches: Vec<&[_]> = mix.batches.iter().map(Vec::as_slice).collect();
    // The flood must actually be a flood for the regression to bite.
    for (tenant, batch) in mix.batches.iter().enumerate() {
        if tenant != HEAVY {
            assert!(
                mix.batches[HEAVY].len() > 3 * batch.len(),
                "heavy tenant volume {} vs tenant {tenant} volume {}",
                mix.batches[HEAVY].len(),
                batch.len()
            );
        }
    }

    let availability = AvailabilityPdf::certain(0.85);
    let budget = availability.expectation().value();
    let flat = StratRec::new(StratRecConfig::default());
    let sharded = StratRec::new(StratRecConfig::default()).with_shards(4);

    let mut catalog = StrategyCatalog::with_policy(
        (0..24).map(strategy_for).collect::<Vec<_>>(),
        RebuildPolicy::threshold(4),
    );
    let mut models =
        ModelLibrary::from_pairs((0..24).map(|id| (strategy_for(id).id, model_for(id))));
    let mut next_id = 24_u64;

    for epoch in 0..6 {
        // Churn between epochs: two inserts, one retire, and a compaction
        // mid-stream so the fairness guarantee is also exercised across a
        // full slot renumbering.
        for _ in 0..2 {
            let strategy = strategy_for(next_id);
            models.insert(strategy.id, model_for(next_id));
            next_id += 1;
            catalog.insert(strategy);
        }
        let live = catalog.live_indices();
        let victim = live[(epoch * 5) % live.len()];
        assert!(catalog.retire(victim));
        if epoch == 3 {
            catalog.compact();
        }

        let flat_outcomes = flat
            .process_tenant_batches(&batches, &catalog, &models, &availability, &mix.policy)
            .expect("policy arity matches the mix");
        let sharded_outcomes = sharded
            .process_tenant_batches(&batches, &catalog, &models, &availability, &mix.policy)
            .expect("policy arity matches the mix");

        let context = format!("epoch {epoch}");
        assert_floors_hold(&flat_outcomes, budget, &context);
        assert_floors_hold(&sharded_outcomes, budget, &context);
        assert_eq!(
            flat_outcomes, sharded_outcomes,
            "{context}: sharded grants must be bit-identical to flat"
        );

        // The flood is real: the heavy tenant demands (far) more than any
        // light tenant, yet the split confines the damage to the residual.
        let heavy = &flat_outcomes[HEAVY];
        for outcome in &flat_outcomes {
            if outcome.tenant != HEAVY {
                assert!(
                    heavy.demand > outcome.demand,
                    "{context}: heavy demand {} should dwarf tenant {}'s {}",
                    heavy.demand,
                    outcome.tenant,
                    outcome.demand
                );
            }
        }
    }
}

#[test]
fn removing_the_flood_never_lowers_a_light_tenants_grant() {
    // The same mix with and without the 10× multiplier on tenant 0: with
    // floors in place, adding the flood can shrink a light tenant's
    // residual share but never its floor entitlement.
    let flooded = flooded_mix();
    let calm = TenantMixScenario {
        tenants: TENANTS,
        zipf_s: 0.0,
        total_requests: 160,
        heavy_tenant: None,
        heavy_factor: 1.0,
        floor: FLOOR,
        seed: 7,
    }
    .materialize();

    let availability = AvailabilityPdf::certain(0.85);
    let budget = availability.expectation().value();
    let layer = StratRec::new(StratRecConfig::default()).with_shards(2);
    let catalog = StrategyCatalog::new((0..24).map(strategy_for).collect::<Vec<_>>());
    let models = ModelLibrary::from_pairs((0..24).map(|id| (strategy_for(id).id, model_for(id))));

    for mix in [&flooded, &calm] {
        let batches: Vec<&[_]> = mix.batches.iter().map(Vec::as_slice).collect();
        let outcomes = layer
            .process_tenant_batches(&batches, &catalog, &models, &availability, &mix.policy)
            .expect("policy arity matches the mix");
        assert_floors_hold(&outcomes, budget, "steady state");
    }

    // Mismatched arity is a policy error, not a panic.
    let batches: Vec<&[_]> = flooded.batches[..TENANTS - 1]
        .iter()
        .map(Vec::as_slice)
        .collect();
    let err = layer
        .process_tenant_batches(&batches, &catalog, &models, &availability, &flooded.policy)
        .unwrap_err();
    assert!(matches!(
        err,
        stratrec::core::error::StratRecError::InvalidFairnessPolicy(_)
    ));
}

// --- Degenerate splits under overload -------------------------------------
//
// The streaming tier calls `FairnessPolicy::split` while a burst is in
// flight, which is exactly when the inputs go degenerate: the budget
// collapses to zero, a tenant goes silent mid-burst, or every floor
// saturates at once. The invariants must not bend: grants sum to at most
// the budget, no grant exceeds its demand, and light-tenant floors hold
// while the heavy tenant is the one being shed.

fn overload_policy() -> FairnessPolicy {
    // Heavy tenant 0 with a big residual weight; three light tenants with
    // guaranteed 0.2 floors.
    FairnessPolicy::new(vec![
        TenantShare::new(0.1, 10.0),
        TenantShare::new(0.2, 1.0),
        TenantShare::new(0.2, 1.0),
        TenantShare::new(0.2, 1.0),
    ])
    .unwrap()
}

fn assert_split_invariants(grants: &[f64], budget: f64, demands: &[f64]) {
    let total: f64 = grants.iter().sum();
    assert!(
        total <= budget + 1e-9,
        "grants {total} oversubscribe budget {budget}"
    );
    for (tenant, (&grant, &demand)) in grants.iter().zip(demands).enumerate() {
        assert!(grant >= 0.0, "tenant {tenant} granted negative {grant}");
        assert!(
            grant <= demand + 1e-12,
            "tenant {tenant} granted {grant} beyond its demand {demand}"
        );
    }
}

#[test]
fn a_zero_budget_split_grants_nothing_and_does_not_panic() {
    let policy = overload_policy();
    // A fully shed platform: zero budget against a flooding demand vector.
    let demands = [1_000.0, 3.0, 0.5, 2.0];
    let grants = policy.split(0.0, &demands);
    assert_split_invariants(&grants, 0.0, &demands);
    assert!(
        grants.iter().all(|&g| g == 0.0),
        "a zero budget grants exactly zero everywhere: {grants:?}"
    );
}

#[test]
fn a_tenant_going_silent_mid_burst_frees_its_share_for_the_others() {
    let policy = overload_policy();
    let budget = 1.0;
    // Tenant 2 issues nothing during the burst while tenant 0 floods.
    let demands = [50.0, 0.4, 0.0, 0.4];
    let grants = policy.split(budget, &demands);
    assert_split_invariants(&grants, budget, &demands);
    assert_eq!(grants[2], 0.0, "no demand, no grant");
    // The light tenants with demand keep their full floor entitlement …
    for tenant in [1, 3] {
        assert!(
            grants[tenant] >= 0.2 * budget - 1e-12,
            "tenant {tenant} floor broken: {grants:?}"
        );
    }
    // … and the burst's slack (the silent tenant's unused floor) is
    // water-filled, so the whole budget is still put to work.
    let total: f64 = grants.iter().sum();
    assert!(
        (total - budget).abs() < 1e-9,
        "demand far beyond budget must consume it fully: {grants:?}"
    );
    // The flood is confined to the residual: the heavy tenant can never
    // take a light tenant's floor, no matter its weight or volume.
    assert!(
        grants[0] <= budget - 2.0 * (0.2 * budget) + 1e-9,
        "heavy tenant {} ate into the standing floors: {grants:?}",
        grants[0]
    );
}

#[test]
fn all_floors_saturated_leaves_exactly_the_floor_split() {
    // Floors sum to 1: the floors phase consumes the entire budget and the
    // water-fill has nothing to distribute — the heavy tenant's 100×
    // demand and 10× weight must win it nothing extra.
    let policy = FairnessPolicy::new(vec![
        TenantShare::new(0.4, 10.0),
        TenantShare::new(0.3, 1.0),
        TenantShare::new(0.3, 1.0),
    ])
    .unwrap();
    let budget = 0.8;
    let demands = [100.0, 1.0, 1.0];
    let grants = policy.split(budget, &demands);
    assert_split_invariants(&grants, budget, &demands);
    let expected = [0.4 * budget, 0.3 * budget, 0.3 * budget];
    for (tenant, (&grant, &floor_grant)) in grants.iter().zip(&expected).enumerate() {
        assert!(
            (grant - floor_grant).abs() < 1e-9,
            "tenant {tenant}: granted {grant}, saturated floor is {floor_grant}"
        );
    }
}
