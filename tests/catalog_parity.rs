//! Parity tests: the catalog-backed (R-tree-indexed, parallel) pipeline must
//! produce results **identical** to the seed's linear-scan pipeline — same
//! workforce matrices, same `BatchOutcome`s, same `AdparSolution`s — on the
//! paper's running example and on randomized synthetic scenarios.

use stratrec::core::adpar::{
    AdparBaseline2, AdparBaseline3, AdparBruteForce, AdparExact, AdparProblem, AdparSolver,
};
use stratrec::core::availability::AvailabilityPdf;
use stratrec::core::batch::{BatchObjective, BatchStrat};
use stratrec::core::catalog::{RebuildPolicy, StrategyCatalog};
use stratrec::core::engine::BatchEngine;
use stratrec::core::model::{DeploymentRequest, Strategy};
use stratrec::core::modeling::ModelLibrary;
use stratrec::core::prelude::*;
use stratrec::core::stratrec::{StratRec, StratRecConfig};
use stratrec::core::workforce::{EligibilityRule, WorkforceMatrix};
use stratrec::workload::scenario::{AdparScenario, BatchScenario, ParameterDistribution};

const SEEDS: [u64; 6] = [2020, 1, 7, 42, 99, 123_456];

fn assert_matrices_equal(
    requests: &[DeploymentRequest],
    strategies: &[Strategy],
    catalog: &StrategyCatalog,
    models: &ModelLibrary,
    rule: EligibilityRule,
    context: &str,
) {
    let scan = WorkforceMatrix::compute_with_rule(requests, strategies, models, rule).unwrap();
    let indexed = WorkforceMatrix::compute_with_catalog(requests, catalog, models, rule).unwrap();
    assert_eq!(scan, indexed, "workforce matrix diverged: {context}");
}

#[test]
fn eligibility_matches_linear_scan_on_random_scenarios() {
    for seed in SEEDS {
        for distribution in ParameterDistribution::ALL {
            let instance = BatchScenario {
                batch_size: 15,
                strategy_count: 400,
                k: 5,
                availability: 0.5,
                distribution,
                seed,
            }
            .materialize();
            let catalog = instance.catalog();
            for request in &instance.requests {
                assert_eq!(
                    catalog.eligible_for_request(request),
                    request.eligible_strategies(&instance.strategies),
                    "seed {seed}, {distribution:?}, request {:?}",
                    request.id
                );
            }
        }
    }
}

#[test]
fn workforce_matrices_match_on_running_example_and_random_seeds() {
    // Running example.
    let strategies = stratrec::core::examples_data::running_example_strategies();
    let requests = stratrec::core::examples_data::running_example_requests();
    let models = stratrec::core::examples_data::running_example_models();
    let catalog = StrategyCatalog::from_slice(&strategies);
    for rule in [
        EligibilityRule::StrategyParameters,
        EligibilityRule::ModelOnly,
    ] {
        assert_matrices_equal(
            &requests,
            &strategies,
            &catalog,
            &models,
            rule,
            "running example",
        );
    }

    // Random scenarios, both distributions and both eligibility rules.
    for seed in SEEDS {
        for distribution in ParameterDistribution::ALL {
            let instance = BatchScenario {
                batch_size: 12,
                strategy_count: 300,
                k: 5,
                availability: 0.6,
                distribution,
                seed,
            }
            .materialize();
            let catalog = instance.catalog();
            for rule in [
                EligibilityRule::StrategyParameters,
                EligibilityRule::ModelOnly,
            ] {
                assert_matrices_equal(
                    &instance.requests,
                    &instance.strategies,
                    &catalog,
                    &instance.models,
                    rule,
                    &format!("seed {seed}, {distribution:?}, {rule:?}"),
                );
            }
        }
    }
}

#[test]
fn batch_outcomes_match_for_both_objectives_and_aggregations() {
    for seed in SEEDS {
        let instance = BatchScenario {
            batch_size: 20,
            strategy_count: 500,
            k: 4,
            availability: 0.5,
            distribution: ParameterDistribution::Uniform,
            seed,
        }
        .materialize();
        let catalog = instance.catalog();
        for objective in [BatchObjective::Throughput, BatchObjective::Payoff] {
            for aggregation in [AggregationMode::Sum, AggregationMode::Max] {
                let engine = BatchStrat::new(objective, aggregation);
                let scan = engine
                    .recommend_with_models(
                        &instance.requests,
                        &instance.strategies,
                        &instance.models,
                        instance.requests.len().min(4),
                        instance.availability,
                    )
                    .unwrap();
                let indexed = engine
                    .recommend_with_catalog(
                        &instance.requests,
                        &catalog,
                        &instance.models,
                        instance.requests.len().min(4),
                        instance.availability,
                    )
                    .unwrap();
                assert_eq!(scan, indexed, "seed {seed}, {objective:?}, {aggregation:?}");
            }
        }
    }
}

#[test]
fn adpar_solutions_match_for_all_four_solvers() {
    for seed in SEEDS {
        let instance = AdparScenario {
            strategy_count: 18,
            k: 4,
            seed,
            ..AdparScenario::default()
        }
        .materialize();
        let catalog = instance.catalog();
        let scan_problem = AdparProblem::new(&instance.request, &instance.strategies, instance.k);
        let indexed_problem = AdparProblem::with_catalog(&instance.request, &catalog, instance.k);
        assert_eq!(scan_problem.relaxations(), indexed_problem.relaxations());

        let solvers: [&dyn AdparSolver; 4] = [
            &AdparExact,
            &AdparBruteForce,
            &AdparBaseline2,
            &AdparBaseline3::default(),
        ];
        for solver in solvers {
            let scan = solver.solve(&scan_problem).unwrap();
            let indexed = solver.solve(&indexed_problem).unwrap();
            assert_eq!(scan, indexed, "seed {seed}, solver {}", solver.name());
        }
        // A custom Baseline3 node capacity must not change results either
        // (the solver falls back to loading its own tree from the catalog's
        // pre-normalized points).
        let custom = AdparBaseline3 { node_capacity: 3 };
        assert_eq!(
            custom.solve(&scan_problem).unwrap(),
            custom.solve(&indexed_problem).unwrap(),
            "seed {seed}, custom node capacity"
        );
    }
}

#[test]
fn adpar_parity_survives_catalog_churn() {
    // Post-churn parity: mutate the running-example catalog (insert two
    // strategies, retire one original slot), then re-run the four-solver
    // parity check against a plain problem over the compacted live set. The
    // catalog problem reports stable slot indices; mapping them through the
    // live slot order must reproduce the compact solution exactly. This also
    // pins epoch invalidation: relaxations are recomputed at the catalog's
    // current epoch, so the retired slot is sentinel-masked out.
    use stratrec::core::model::DeploymentParameters;

    for policy in [
        RebuildPolicy::always(),
        RebuildPolicy::threshold(2),
        RebuildPolicy::never(),
    ] {
        let strategies = stratrec::core::examples_data::running_example_strategies();
        let requests = stratrec::core::examples_data::running_example_requests();
        let mut catalog = StrategyCatalog::with_policy(strategies, policy);
        assert!(catalog.is_pristine());
        catalog.insert(stratrec::core::model::Strategy::from_params(
            10,
            DeploymentParameters::clamped(0.9, 0.45, 0.2),
        ));
        catalog.insert(stratrec::core::model::Strategy::from_params(
            11,
            DeploymentParameters::clamped(0.6, 0.15, 0.35),
        ));
        assert!(catalog.retire(0)); // retire s1
        assert_eq!(catalog.epoch(), 3);
        assert!(!catalog.is_pristine());

        let live_slots = catalog.live_indices();
        let compact: Vec<Strategy> = live_slots
            .iter()
            .map(|&slot| catalog.strategy(slot).clone())
            .collect();
        assert_eq!(compact.len(), 5);

        let solvers: [&dyn AdparSolver; 4] = [
            &AdparExact,
            &AdparBruteForce,
            &AdparBaseline2,
            &AdparBaseline3::default(),
        ];
        let check_parity = |catalog: &StrategyCatalog, stage: &str| {
            for request in &requests {
                let scan_problem = AdparProblem::new(request, &compact, 3);
                let indexed_problem = AdparProblem::with_catalog(request, catalog, 3);
                assert_eq!(indexed_problem.catalog_epoch(), catalog.epoch());
                assert_eq!(indexed_problem.available_strategies(), compact.len());
                for solver in solvers {
                    let scan = solver.solve(&scan_problem).unwrap();
                    let indexed = solver.solve(&indexed_problem).unwrap();
                    let context = format!(
                        "{policy:?}, {stage}, solver {}, request {:?}",
                        solver.name(),
                        request.id
                    );
                    assert_eq!(scan.alternative, indexed.alternative, "{context}");
                    assert_eq!(scan.relaxation, indexed.relaxation, "{context}");
                    assert!(
                        (scan.distance - indexed.distance).abs() < 1e-12,
                        "{context}"
                    );
                    let mapped: Vec<usize> = scan
                        .strategy_indices
                        .iter()
                        .map(|&compact_idx| live_slots[compact_idx])
                        .collect();
                    assert_eq!(mapped, indexed.strategy_indices, "{context}");
                    // The retired slot can never be recommended.
                    assert!(!indexed.strategy_indices.contains(&0), "{context}");
                }
            }
        };
        check_parity(&catalog, "post-churn");

        // Re-packing restores the shared-index fast path for Baseline3
        // without changing any solver's answer.
        catalog.force_rebuild();
        assert!(catalog.index_is_packed_live());
        check_parity(&catalog, "post-force_rebuild");
    }
}

#[test]
fn four_solver_parity_survives_compaction() {
    // Solve, compact, remap the solution slots, solve again: for every
    // solver the two answers must be **bit-identical modulo the remap** —
    // compaction renumbers slots but never changes the live set, the
    // relative slot order (all tie-breaks), the packed STR structure, or a
    // single floating-point input of any solver.
    use stratrec::core::model::DeploymentParameters;

    for policy in [
        RebuildPolicy::always(),
        RebuildPolicy::threshold(2),
        RebuildPolicy::never(),
    ] {
        let strategies = stratrec::core::examples_data::running_example_strategies();
        let requests = stratrec::core::examples_data::running_example_requests();
        let mut catalog = StrategyCatalog::with_policy(strategies, policy);
        catalog.insert(stratrec::core::model::Strategy::from_params(
            10,
            DeploymentParameters::clamped(0.9, 0.45, 0.2),
        ));
        catalog.insert(stratrec::core::model::Strategy::from_params(
            11,
            DeploymentParameters::clamped(0.6, 0.15, 0.35),
        ));
        assert!(catalog.retire(0));
        assert!(catalog.retire(2));

        let solvers: [&dyn AdparSolver; 4] = [
            &AdparExact,
            &AdparBruteForce,
            &AdparBaseline2,
            &AdparBaseline3::default(),
        ];

        // Solve everything against the churned (pre-compaction) numbering.
        let before: Vec<Vec<_>> = requests
            .iter()
            .map(|request| {
                solvers
                    .iter()
                    .map(|solver| {
                        solver
                            .solve(&AdparProblem::with_catalog(request, &catalog, 3))
                            .unwrap()
                    })
                    .collect()
            })
            .collect();

        let remap = catalog.compact();
        assert_eq!(catalog.slot_count(), catalog.len());
        assert!(catalog.index_is_packed_live());

        for (request, request_before) in requests.iter().zip(&before) {
            for (solver, old) in solvers.iter().zip(request_before) {
                let context = format!(
                    "{policy:?}, solver {}, request {:?}",
                    solver.name(),
                    request.id
                );
                let remapped = old.remap(&remap).unwrap_or_else(|| {
                    panic!("pre-compaction solutions admit live slots only: {context}")
                });
                let fresh = solver
                    .solve(&AdparProblem::with_catalog(request, &catalog, 3))
                    .unwrap();
                // Full structural equality: alternative, relaxation and
                // distance bit-identical, indices equal after renumbering.
                assert_eq!(remapped, fresh, "{context}");
            }
        }
    }
}

#[test]
fn batch_engine_outputs_are_identical_for_every_thread_count() {
    // The parallel engine must produce byte-identical workforce matrices
    // and ADPaR solutions no matter how the rows / problems are sharded.
    for seed in SEEDS {
        let instance = BatchScenario {
            batch_size: 24,
            strategy_count: 400,
            k: 4,
            availability: 0.4,
            distribution: ParameterDistribution::Uniform,
            seed,
        }
        .materialize();
        let catalog = instance.catalog();
        for rule in [
            EligibilityRule::StrategyParameters,
            EligibilityRule::ModelOnly,
        ] {
            let sequential = WorkforceMatrix::compute_with_catalog(
                &instance.requests,
                &catalog,
                &instance.models,
                rule,
            )
            .unwrap();
            for threads in [1, 2, 3, 5, 0] {
                let parallel = BatchEngine::with_threads(threads)
                    .workforce_matrix(&instance.requests, &catalog, &instance.models, rule)
                    .unwrap();
                assert_eq!(
                    sequential, parallel,
                    "seed {seed}, {rule:?}, {threads} threads"
                );
            }
        }

        // ADPaR fan-out over every request in the batch, against standalone
        // solves in input order.
        let indices: Vec<usize> = (0..instance.requests.len()).collect();
        let expected: Vec<_> = indices
            .iter()
            .map(|&idx| {
                AdparExact.solve(&AdparProblem::with_catalog(
                    &instance.requests[idx],
                    &catalog,
                    4,
                ))
            })
            .collect();
        for threads in [1, 2, 3, 0] {
            let batch = BatchEngine::with_threads(threads).solve_adpar_batch(
                &instance.requests,
                &catalog,
                &indices,
                4,
            );
            assert_eq!(batch, expected, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn middle_layer_reports_match_the_sequential_scan_pipeline() {
    let layer = StratRec::new(StratRecConfig {
        k: 3,
        objective: BatchObjective::Throughput,
        aggregation: AggregationMode::Max,
    });

    // Reference: the seed's sequential scan pipeline, reconstructed inline.
    let sequential = |requests: &[DeploymentRequest],
                      strategies: &[Strategy],
                      models: &ModelLibrary,
                      availability: &AvailabilityPdf| {
        let expected = availability.expectation();
        let engine = BatchStrat::new(layer.config.objective, layer.config.aggregation);
        let batch = engine
            .recommend_with_models(requests, strategies, models, layer.config.k, expected)
            .unwrap();
        let alternatives: Vec<_> = batch
            .unsatisfied
            .iter()
            .map(|&idx| {
                AdparExact.solve(&AdparProblem::new(
                    &requests[idx],
                    strategies,
                    layer.config.k,
                ))
            })
            .collect();
        (batch, alternatives)
    };

    // Running example plus random scenarios wide enough to exercise the
    // parallel ADPaR fan-out.
    let mut cases: Vec<(Vec<DeploymentRequest>, Vec<Strategy>, ModelLibrary)> = vec![(
        stratrec::core::examples_data::running_example_requests(),
        stratrec::core::examples_data::running_example_strategies(),
        stratrec::core::examples_data::running_example_models(),
    )];
    for seed in SEEDS {
        let instance = BatchScenario {
            batch_size: 16,
            strategy_count: 250,
            k: 3,
            availability: 0.3,
            distribution: ParameterDistribution::Uniform,
            seed,
        }
        .materialize();
        cases.push((instance.requests, instance.strategies, instance.models));
    }

    for (i, (requests, strategies, models)) in cases.iter().enumerate() {
        let pdf = AvailabilityPdf::certain(if i == 0 { 0.8 } else { 0.3 });
        let (expected_batch, expected_alternatives) =
            sequential(requests, strategies, models, &pdf);
        let report = layer
            .process_batch(requests, strategies, models, &pdf)
            .unwrap();
        assert_eq!(report.batch, expected_batch, "case {i}");
        assert_eq!(
            report.alternatives.len(),
            expected_alternatives.len(),
            "case {i}"
        );
        for (alt, expected) in report.alternatives.iter().zip(&expected_alternatives) {
            assert_eq!(&alt.solution, expected, "case {i}");
        }
        // The parallel fan-out preserves the order of `unsatisfied`.
        let order: Vec<usize> = report
            .alternatives
            .iter()
            .map(|a| a.request_index)
            .collect();
        assert_eq!(order, report.batch.unsatisfied, "case {i}");
    }
}
