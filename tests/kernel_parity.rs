//! Precision-parity properties for the columnar f32 workforce kernel.
//!
//! The kernel's contract against the scalar f64 reference
//! (`WorkforceMatrix::compute_with_catalog`) has three tiers:
//!
//! 1. **Bit-exact structure** — eligibility masks, the finite/∞
//!    classification of every cell, and top-k slot sets (including index
//!    tie-breaking) are identical;
//! 2. **ULP-bounded values** — finite cells agree within the documented
//!    `1e-6` absolute bound (f32 round-trip error, ≪ the documented `2e-6`
//!    contract);
//! 3. **f64 mode is the reference** — `Precision::F64` through the
//!    precision-aware entry points reproduces `compute_with_catalog`
//!    bit for bit.
//!
//! Inputs are drawn from a 1/64 grid (exactly representable in both f32 and
//! f64): every satisfaction comparison is then either an exact tie or
//! separated by at least 1/64 ≫ the kernel's `PROBE_EPS` boundary band, and
//! any two distinct finite cells differ by at least `1/63² ≈ 2.5e-4` ≫ f32
//! rounding — so tier 1 is *provable* on the grid, not merely probable.

use stratrec::core::catalog::StrategyCatalog;
use stratrec::core::engine::BatchEngine;
use stratrec::core::model::{DeploymentParameters, DeploymentRequest, Strategy, TaskType};
use stratrec::core::modeling::{LinearModel, ModelLibrary, StrategyModel};
use stratrec::core::workforce::{AggregationMode, EligibilityRule, Precision, WorkforceMatrix};

#[allow(unused_imports)]
use proptest::prelude::*;

/// One grid step: `n / 64`, exact in f32 and f64 for the ranges drawn here.
fn grid(n: u32) -> f64 {
    f64::from(n) / 64.0
}

/// A line with slope `±n/64` (`|α| ≥ 1/4`) and intercept on the wider
/// `[-1/2, 3/2]` grid, so lines rise, fall, overshoot and undershoot.
type LineSpec = (u32, bool, u32);

fn line(spec: LineSpec) -> LinearModel {
    let (alpha_num, negative, beta_num) = spec;
    let alpha = if negative {
        -grid(alpha_num)
    } else {
        grid(alpha_num)
    };
    let beta = (f64::from(beta_num) - 32.0) / 64.0;
    LinearModel::new(alpha, beta)
}

type StrategySpec = ((u32, u32, u32), (LineSpec, LineSpec, LineSpec));

fn build_instance(
    specs: &[StrategySpec],
    request_specs: &[(u32, u32, u32)],
) -> (StrategyCatalog, ModelLibrary, Vec<DeploymentRequest>) {
    let strategies: Vec<Strategy> = specs
        .iter()
        .enumerate()
        .map(|(i, &((q, c, l), _))| {
            Strategy::from_params(
                i as u64,
                DeploymentParameters::clamped(grid(q), grid(c), grid(l)),
            )
        })
        .collect();
    let models =
        ModelLibrary::from_pairs(specs.iter().enumerate().map(|(i, &(_, (lq, lc, ll)))| {
            (
                strategies[i].id,
                StrategyModel::new(line(lq), line(lc), line(ll)),
            )
        }));
    let catalog = StrategyCatalog::from_slice(&strategies);
    let requests = request_specs
        .iter()
        .enumerate()
        .map(|(i, &(q, c, l))| {
            DeploymentRequest::new(
                i as u64,
                TaskType::SentenceTranslation,
                DeploymentParameters::clamped(grid(q), grid(c), grid(l)),
            )
        })
        .collect();
    (catalog, models, requests)
}

const RULES: [EligibilityRule; 2] = [
    EligibilityRule::StrategyParameters,
    EligibilityRule::ModelOnly,
];

proptest! {
    #[test]
    fn f32_kernel_matches_the_f64_reference_on_the_grid(
        specs in proptest::collection::vec(
            (
                (0_u32..=64, 0_u32..=64, 0_u32..=64),
                (
                    (16_u32..=63, proptest::bool::ANY, 0_u32..=128),
                    (16_u32..=63, proptest::bool::ANY, 0_u32..=128),
                    (16_u32..=63, proptest::bool::ANY, 0_u32..=128),
                ),
            ),
            1..40,
        ),
        request_specs in proptest::collection::vec(
            (0_u32..=64, 0_u32..=64, 0_u32..=64),
            1..8,
        ),
        k in 1_usize..6,
    ) {
        let (catalog, models, requests) = build_instance(&specs, &request_specs);
        for rule in RULES {
            // Tier 3: f64 precision mode IS the scalar reference.
            let reference =
                WorkforceMatrix::compute_with_catalog(&requests, &catalog, &models, rule)
                    .unwrap();
            let f64_matrix = WorkforceMatrix::compute_with_catalog_precision(
                &requests, &catalog, &models, rule, Precision::F64,
            )
            .unwrap();
            prop_assert_eq!(&reference, &f64_matrix, "{:?}: f64 mode drifted", rule);

            let f32_matrix = WorkforceMatrix::compute_with_catalog_precision(
                &requests, &catalog, &models, rule, Precision::F32,
            )
            .unwrap();
            prop_assert_eq!(f32_matrix.precision(), Precision::F32);
            prop_assert_eq!(f32_matrix.rows(), reference.rows());
            prop_assert_eq!(f32_matrix.cols(), reference.cols());

            // Tiers 1 and 2: per-cell classification and value bound.
            for row in 0..reference.rows() {
                for col in 0..reference.cols() {
                    let exact = reference.get(row, col);
                    let kernel = f32_matrix.get(row, col);
                    prop_assert_eq!(
                        exact.is_finite(),
                        kernel.is_finite(),
                        "{:?}: classification flip at ({}, {}): {} vs {}",
                        rule, row, col, exact, kernel
                    );
                    if exact.is_finite() {
                        prop_assert!(
                            (exact - kernel).abs() <= 1e-6,
                            "{:?}: cell ({}, {}) off by {:e}",
                            rule, row, col, (exact - kernel).abs()
                        );
                    }
                }
            }

            // Tier 1: identical top-k slot sets under index tie-breaking.
            for mode in [AggregationMode::Sum, AggregationMode::Max] {
                let exact_agg = reference.aggregate(k, mode);
                let kernel_agg = f32_matrix.aggregate(k, mode);
                prop_assert_eq!(exact_agg.len(), kernel_agg.len());
                for (row, (exact, kernel)) in
                    exact_agg.iter().zip(&kernel_agg).enumerate()
                {
                    match (exact, kernel) {
                        (None, None) => {}
                        (Some(e), Some(f)) => {
                            prop_assert_eq!(
                                &e.strategy_indices,
                                &f.strategy_indices,
                                "{:?}, {:?}: top-{} slots differ in row {}",
                                rule, mode, k, row
                            );
                            prop_assert!(
                                (e.workforce - f.workforce).abs() <= 1e-5,
                                "{:?}, {:?}: aggregate off in row {}",
                                rule, mode, row
                            );
                        }
                        _ => prop_assert!(
                            false,
                            "{:?}, {:?}: satisfiability flip in row {}",
                            rule, mode, row
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn engine_sharding_preserves_kernel_bits_on_the_grid(
        specs in proptest::collection::vec(
            (
                (0_u32..=64, 0_u32..=64, 0_u32..=64),
                (
                    (16_u32..=63, proptest::bool::ANY, 0_u32..=128),
                    (16_u32..=63, proptest::bool::ANY, 0_u32..=128),
                    (16_u32..=63, proptest::bool::ANY, 0_u32..=128),
                ),
            ),
            1..24,
        ),
        request_specs in proptest::collection::vec(
            (0_u32..=64, 0_u32..=64, 0_u32..=64),
            1..6,
        ),
        threads in 0_usize..5,
    ) {
        // Row sharding must never change a single bit of either precision:
        // rows are filled independently, so the engine output equals the
        // sequential fill cell for cell.
        let (catalog, models, requests) = build_instance(&specs, &request_specs);
        for rule in RULES {
            for precision in Precision::ALL {
                let sequential = WorkforceMatrix::compute_with_catalog_precision(
                    &requests, &catalog, &models, rule, precision,
                )
                .unwrap();
                let sharded = BatchEngine::with_threads(threads)
                    .with_precision(precision)
                    .workforce_matrix(&requests, &catalog, &models, rule)
                    .unwrap();
                prop_assert_eq!(
                    &sequential,
                    &sharded,
                    "{:?}, {:?}, {} threads",
                    rule,
                    precision,
                    threads
                );
            }
        }
    }
}
