//! Integration tests pinning the paper's formal claims and experimental
//! observations (see EXPERIMENTS.md for the full mapping).

use stratrec::core::adpar::AdparBruteForce;
use stratrec::core::batch::{BatchAlgorithm, BatchObjective};
use stratrec::core::prelude::*;
use stratrec::workload::scenario::{AdparScenario, BatchScenario, ParameterDistribution};

/// Theorem 2: `BatchStrat-ThroughPut` is exact. Verified against brute force
/// on the paper's reduced grid.
#[test]
fn theorem_2_throughput_is_exact() {
    for seed in 0..10 {
        let instance = BatchScenario {
            batch_size: 12,
            strategy_count: 30,
            k: 5,
            availability: 0.5,
            distribution: ParameterDistribution::Uniform,
            seed,
        }
        .materialize();
        let run = |algorithm| {
            BatchStrat::new(BatchObjective::Throughput, AggregationMode::Max)
                .with_algorithm(algorithm)
                .recommend_with_models(
                    &instance.requests,
                    &instance.strategies,
                    &instance.models,
                    5,
                    instance.availability,
                )
                .unwrap()
                .objective_value
        };
        assert!((run(BatchAlgorithm::BatchStrat) - run(BatchAlgorithm::BruteForce)).abs() < 1e-9);
    }
}

/// Theorem 3: `BatchStrat-PayOff` achieves at least half the optimum; the
/// paper's Observation 1 is that empirically it stays above 0.9.
#[test]
fn theorem_3_payoff_half_approximation_and_observation_1() {
    let mut worst_factor: f64 = 1.0;
    for seed in 0..10 {
        let instance = BatchScenario {
            batch_size: 10,
            strategy_count: 30,
            k: 5,
            availability: 0.5,
            distribution: ParameterDistribution::Normal,
            seed,
        }
        .materialize();
        let run = |algorithm| {
            BatchStrat::new(BatchObjective::Payoff, AggregationMode::Max)
                .with_algorithm(algorithm)
                .recommend_with_models(
                    &instance.requests,
                    &instance.strategies,
                    &instance.models,
                    5,
                    instance.availability,
                )
                .unwrap()
                .objective_value
        };
        let optimum = run(BatchAlgorithm::BruteForce);
        let approx = run(BatchAlgorithm::BatchStrat);
        if optimum > 1e-9 {
            worst_factor = worst_factor.min(approx / optimum);
        }
        assert!(approx + 1e-9 >= optimum / 2.0);
    }
    assert!(
        worst_factor > 0.9,
        "Observation 1 expects empirical factors above 0.9, got {worst_factor}"
    );
}

/// Theorem 4 / Observation 3: `ADPaR-Exact` equals the exhaustive optimum and
/// strictly dominates the two baselines in aggregate.
#[test]
fn theorem_4_adpar_exact_is_optimal() {
    use stratrec::core::adpar::{AdparBaseline2, AdparBaseline3};
    let mut exact_total = 0.0;
    let mut b2_total = 0.0;
    let mut b3_total = 0.0;
    for seed in 0..8 {
        let instance = AdparScenario {
            strategy_count: 18,
            k: 4,
            seed,
            ..AdparScenario::brute_force_defaults()
        }
        .materialize();
        let problem = AdparProblem::new(&instance.request, &instance.strategies, instance.k);
        let exact = AdparExact.solve(&problem).unwrap().distance;
        let brute = AdparBruteForce.solve(&problem).unwrap().distance;
        assert!((exact - brute).abs() < 1e-9, "seed {seed}");
        exact_total += exact;
        b2_total += AdparBaseline2.solve(&problem).unwrap().distance;
        b3_total += AdparBaseline3::default().solve(&problem).unwrap().distance;
    }
    assert!(exact_total <= b2_total + 1e-9);
    assert!(exact_total <= b3_total + 1e-9);
}

/// Running example (§2.2 / §2.3): d3 is served with {s2, s3, s4}; d1's
/// alternative parameters are (0.4, 0.5, 0.28) exactly as printed in the
/// paper.
#[test]
fn running_example_numbers_match_the_paper() {
    let strategies = stratrec::core::examples_data::running_example_strategies();
    let requests = stratrec::core::examples_data::running_example_requests();
    let outcome = BatchStrat::new(BatchObjective::Throughput, AggregationMode::Max).recommend(
        &requests,
        &strategies,
        3,
        WorkerAvailability::new(0.8).unwrap(),
    );
    assert_eq!(outcome.satisfied.len(), 1);
    assert_eq!(outcome.satisfied[0].request_index, 2);

    let problem = AdparProblem::new(&requests[0], &strategies, 3);
    let solution = AdparExact.solve(&problem).unwrap();
    assert!((solution.alternative.quality - 0.4).abs() < 1e-9);
    assert!((solution.alternative.cost - 0.5).abs() < 1e-9);
    assert!((solution.alternative.latency - 0.28).abs() < 1e-9);
}

/// Figure 14 shapes: satisfaction decreases in k, increases in |S| and W.
#[test]
fn figure_14_shapes_hold() {
    let rate = |k: usize, s: usize, w: f64| {
        let instance = BatchScenario {
            batch_size: 10,
            strategy_count: s,
            k,
            availability: w,
            distribution: ParameterDistribution::Uniform,
            seed: 3,
        }
        .materialize();
        BatchStrat::new(BatchObjective::Throughput, AggregationMode::Max)
            .recommend_with_models(
                &instance.requests,
                &instance.strategies,
                &instance.models,
                k,
                instance.availability,
            )
            .unwrap()
            .satisfaction_rate()
    };
    assert!(rate(2, 500, 0.5) + 1e-9 >= rate(50, 500, 0.5));
    assert!(rate(5, 1000, 0.5) + 1e-9 >= rate(5, 20, 0.5));
    assert!(rate(5, 500, 0.9) + 1e-9 >= rate(5, 500, 0.5));
}
