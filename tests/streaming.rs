//! Streaming overload suite: the invariants of the admission-controlled
//! front-end under 2× sustainable load.
//!
//! The pins, in order:
//!
//! 1. **Exactly one typed outcome per request.** An open-loop flood at
//!    roughly twice what the server can sustain — with a churn writer
//!    publishing catalog epochs underneath — must resolve every arrival to
//!    exactly one served / shed / failed response. Never a silent drop,
//!    never a duplicate.
//! 2. **Degraded ≡ `Baseline2`.** Every window the controller served at
//!    [`ServiceQuality::Degraded`] must be bit-identical to the sequential
//!    degraded pipeline replayed over the same pinned snapshot.
//! 3. **Bounded recovery.** Once the flood stops and a calm tail drains the
//!    queue, the controller must be back at full quality by shutdown.
//! 4. **Deadlines are honored.** Under calm load, every response is served
//!    at full quality and p99 latency sits within the deadline budget.
//! 5. **Open-loop determinism.** The arrival schedule is a pure function of
//!    its scenario — byte-identical across runs and across threads, which
//!    is what the CI `RUST_TEST_THREADS` matrix leans on.

use std::sync::Arc;
use std::time::{Duration, Instant};

use stratrec::core::availability::AvailabilityPdf;
use stratrec::core::catalog::{ConcurrentCatalog, RebuildPolicy};
use stratrec::core::prelude::{ServiceQuality, StratRec, StratRecConfig};
use stratrec::serve::{
    AdmissionConfig, ControllerConfig, ServeConfig, ServerHandle, StreamOutcome, StreamRequest,
    StreamServer,
};
use stratrec::workload::{
    schedule_fingerprint, Arrival, BurstPhase, ChurnInstance, ChurnScenario, OpenLoopScenario,
};

fn churned_instance() -> ChurnInstance {
    ChurnScenario {
        initial_strategies: 120,
        epochs: 6,
        inserts_per_epoch: 10,
        retires_per_epoch: 8,
        batch_size: 6,
        k: 3,
        seed: 13,
        ..ChurnScenario::default()
    }
    .materialize()
}

fn overload_config() -> ServeConfig {
    ServeConfig {
        admission: AdmissionConfig {
            max_batch: 8,
            max_wait_ms: 2,
            queue_capacity: 24,
            initial_estimate_ms: 1,
        },
        controller: ControllerConfig {
            degrade_watermark: 16,
            recover_watermark: 4,
            recover_windows: 3,
        },
        stratrec: StratRecConfig {
            k: 3,
            ..StratRecConfig::default()
        },
        record_windows: true,
    }
}

/// A burst-then-calm schedule: the 80× burst (24 000 req/s) is far beyond
/// what windows of 8 closing every ~2 ms can drain on any machine, so the
/// 24-deep queue must overflow; the calm tail gives the controller room to
/// recover before shutdown.
fn overload_schedule() -> Vec<Arrival> {
    OpenLoopScenario {
        base_rate_hz: 300.0,
        duration_ms: 900,
        bursts: vec![BurstPhase {
            start_ms: 100,
            end_ms: 450,
            factor: 80.0,
        }],
        tenants: 4,
        zipf_s: 1.0,
        heavy_tenant: Some(0),
        heavy_factor: 5.0,
        deadline_ms: 40,
        seed: 99,
    }
    .materialize()
}

/// Replays `arrivals` against a fresh server over a churned catalog and
/// returns everything observable. The churn writer publishes one epoch per
/// ~120 ms, racing the service thread's delta migration.
fn run_soak(
    instance: &ChurnInstance,
    config: ServeConfig,
    arrivals: &[Arrival],
) -> (
    stratrec::serve::ServerStats,
    Vec<stratrec::serve::StreamResponse>,
) {
    let catalog = Arc::new(ConcurrentCatalog::new(
        instance.catalog(RebuildPolicy::default()),
    ));
    let pdf = AvailabilityPdf::certain(instance.availability.value());
    let handle =
        StreamServer::new(config).start(Arc::clone(&catalog), instance.models.clone(), pdf);

    let mut responses = Vec::with_capacity(arrivals.len());
    std::thread::scope(|scope| {
        let writer_catalog = &catalog;
        scope.spawn(move || {
            for i in 0..instance.epochs.len() {
                std::thread::sleep(Duration::from_millis(120));
                let _ = writer_catalog.update(|catalog| instance.apply_epoch(i, catalog));
            }
        });
        replay(&handle, arrivals, &mut responses);
    });
    let (stats, rest) = handle.shutdown();
    responses.extend(rest);
    (stats, responses)
}

/// Open-loop replay: submissions follow the schedule's clock, not the
/// server's. Responses are drained opportunistically along the way.
fn replay(
    handle: &ServerHandle,
    arrivals: &[Arrival],
    responses: &mut Vec<stratrec::serve::StreamResponse>,
) {
    let start = Instant::now();
    for arrival in arrivals {
        let now = start.elapsed();
        if arrival.at > now {
            std::thread::sleep(arrival.at - now);
        }
        let submitted = handle.submit(StreamRequest {
            id: arrival.id,
            tenant: arrival.tenant,
            deadline: arrival.deadline,
            request: arrival.request.clone(),
        });
        assert!(submitted, "the service thread must outlive the stream");
        responses.extend(handle.drain_responses());
    }
}

#[test]
fn overload_resolves_every_request_to_exactly_one_typed_outcome() {
    let instance = churned_instance();
    let arrivals = overload_schedule();
    assert!(arrivals.len() > 1_000, "the flood must be a flood");
    let (stats, responses) = run_soak(&instance, overload_config(), &arrivals);

    // Exactly one response per arrival — no silent drops, no duplicates.
    assert_eq!(responses.len(), arrivals.len());
    let mut seen = vec![false; arrivals.len()];
    for response in &responses {
        let id = usize::try_from(response.id).unwrap();
        assert!(!seen[id], "request {id} resolved twice");
        seen[id] = true;
    }
    assert!(seen.iter().all(|&seen| seen));
    assert_eq!(stats.responses(), arrivals.len() as u64);

    // Every outcome is one of the typed kinds, and sheds carry the typed
    // admission/deadline errors (never some catch-all).
    for response in &responses {
        match &response.outcome {
            StreamOutcome::Served { .. } | StreamOutcome::Failed(_) => {}
            StreamOutcome::Shed(error) => assert!(
                matches!(
                    error,
                    stratrec::core::error::StratRecError::AdmissionRejected { .. }
                        | stratrec::core::error::StratRecError::DeadlineExceeded { .. }
                ),
                "shed responses carry a typed shed error, got {error:?}"
            ),
        }
    }

    // The burst actually overloaded the server: the controller degraded and
    // shedding engaged. (The burst rate is sized far above what windows of
    // 8 closing every ~2 ms can drain, so this holds on any machine.)
    let summary = format!(
        "windows={} full={} degraded={} shed_deadline={} shed_admission={} failed={} peak={}",
        stats.windows,
        stats.served_full,
        stats.served_degraded,
        stats.shed_deadline,
        stats.shed_admission,
        stats.failed,
        stats.peak_queue_depth,
    );
    assert!(
        stats.degraded_windows > 0,
        "an 80× burst must push past the degrade watermark: {summary}"
    );
    assert!(
        stats.shed_deadline + stats.shed_admission > 0,
        "an 80× burst against a 24-deep queue must shed: {summary}"
    );
    assert!(
        stats.served_full > 0,
        "the calm phases must still be served at full quality: {summary}"
    );

    // Bounded recovery: the calm tail (450 ms at 300 req/s against an
    // empty queue) gives the controller its consecutive calm windows back.
    assert_eq!(
        stats.final_quality,
        ServiceQuality::Full,
        "the controller must recover once the flood stops: {summary}"
    );
    assert!(stats.failed == 0, "churned strategies all carry models");
}

#[test]
fn degraded_windows_reenact_bit_identically_as_baseline2() {
    let instance = churned_instance();
    let arrivals = overload_schedule();
    let (stats, _) = run_soak(&instance, overload_config(), &arrivals);
    let pdf = AvailabilityPdf::certain(instance.availability.value());

    let degraded: Vec<_> = stats
        .trace
        .iter()
        .filter(|record| record.quality == ServiceQuality::Degraded)
        .collect();
    assert!(
        !degraded.is_empty(),
        "the burst must produce degraded windows to reenact: {} windows total",
        stats.trace.len()
    );

    // Every degraded window must be bit-identical to the sequential
    // degraded pipeline replayed over the very snapshot it pinned — the
    // "degraded answers are Baseline2 answers" contract, checked after the
    // fact with no help from the server.
    let layer = StratRec::new(overload_config().stratrec);
    for record in &degraded {
        let replayed = layer
            .process_batch_with_catalog_at(
                &record.requests,
                record.snapshot.catalog(),
                &instance.models,
                &pdf,
                ServiceQuality::Degraded,
            )
            .expect("the recorded window served cleanly the first time");
        assert_eq!(
            replayed, record.report,
            "window {} (epoch {}) diverged from its Baseline2 reenactment",
            record.window, record.epoch
        );
    }

    // Full-quality windows replay against the full pipeline the same way:
    // the trace is a complete reenactment log, not just the degraded half.
    if let Some(record) = stats
        .trace
        .iter()
        .find(|record| record.quality == ServiceQuality::Full)
    {
        let replayed = layer
            .process_batch_with_catalog_at(
                &record.requests,
                record.snapshot.catalog(),
                &instance.models,
                &pdf,
                ServiceQuality::Full,
            )
            .expect("the recorded window served cleanly the first time");
        assert_eq!(replayed, record.report);
    }
}

#[test]
fn calm_load_is_served_at_full_quality_within_the_deadline_at_p99() {
    let instance = churned_instance();
    // ~60 req/s with a generous 250 ms budget: no overload anywhere.
    let arrivals = OpenLoopScenario {
        base_rate_hz: 60.0,
        duration_ms: 700,
        bursts: Vec::new(),
        deadline_ms: 250,
        seed: 5,
        ..OpenLoopScenario::default()
    }
    .materialize();
    let config = ServeConfig {
        record_windows: false,
        ..overload_config()
    };
    let (stats, responses) = run_soak(&instance, config, &arrivals);

    assert_eq!(responses.len(), arrivals.len());
    assert_eq!(stats.served_full, arrivals.len() as u64, "{stats:?}");
    assert_eq!(stats.shed_deadline + stats.shed_admission, 0);
    assert_eq!(stats.final_quality, ServiceQuality::Full);

    let mut latencies: Vec<Duration> = responses.iter().map(|r| r.latency).collect();
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() - 1) * 99 / 100];
    assert!(
        p99 <= Duration::from_millis(250),
        "calm-load p99 {p99:?} blew the 250 ms budget"
    );
}

#[test]
fn open_loop_schedules_are_byte_identical_across_threads() {
    // Satellite pin: schedule generation is a pure single-threaded pass, so
    // the same scenario must produce the same bytes no matter how many
    // threads the test harness runs with (`RUST_TEST_THREADS=1` vs the
    // default) or which thread materializes it.
    let scenario = OpenLoopScenario {
        base_rate_hz: 1_200.0,
        duration_ms: 600,
        bursts: vec![
            BurstPhase {
                start_ms: 50,
                end_ms: 200,
                factor: 6.0,
            },
            BurstPhase {
                start_ms: 300,
                end_ms: 350,
                factor: 0.0,
            },
        ],
        tenants: 6,
        zipf_s: 1.0,
        heavy_tenant: Some(1),
        heavy_factor: 8.0,
        deadline_ms: 30,
        seed: 2_020,
    };
    let reference = scenario.materialize();
    let reference_print = schedule_fingerprint(&reference);

    let mut prints = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let scenario = scenario.clone();
                scope.spawn(move || {
                    let schedule = scenario.materialize();
                    (schedule_fingerprint(&schedule), schedule)
                })
            })
            .collect();
        for handle in handles {
            prints.push(handle.join().unwrap());
        }
    });
    for (print, schedule) in &prints {
        assert_eq!(schedule, &reference, "schedules must be byte-identical");
        assert_eq!(*print, reference_print);
    }

    // And the fingerprint is actually sensitive: a different seed moves it.
    let moved = OpenLoopScenario {
        seed: 2_021,
        ..scenario
    }
    .materialize();
    assert_ne!(schedule_fingerprint(&moved), reference_print);
}
